// Tests for the continuous-census subsystem (src/live/): BGP4MP apply
// semantics on the live ObservedRib, the IncrementalCensus live tier against
// the batch census, and the pipeline's equivalence oracle — every epoch's
// snapshot is byte-identical to an independent sequential replay of the
// same update prefix, at any ring capacity and any pool size.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bgp/as_path.hpp"
#include "bgp/message.hpp"
#include "core/census_report.hpp"
#include "core/snapshot_bridge.hpp"
#include "gen/internet.hpp"
#include "gen/updates.hpp"
#include "live/incremental_census.hpp"
#include "live/observed_rib.hpp"
#include "live/pipeline.hpp"
#include "mrt/writer.hpp"
#include "rpsl/object.hpp"
#include "snapshot/writer.hpp"

namespace htor::live {
namespace {

constexpr std::uint32_t kSeedTimestamp = 1281052800u;
constexpr char kSource[] = "live-test";

/// Shared fixture: a small synthetic internet, its mined dictionary, and a
/// deterministic update schedule over its collector RIB.
struct World {
  mrt::ObservedRib rib;
  rpsl::CommunityDictionary dict;
  std::vector<mrt::Record> updates;
};

const World& world() {
  static const World w = [] {
    const auto net = gen::SyntheticInternet::generate(gen::small_params(7));
    World out;
    out.rib = net.collect();
    out.dict = rpsl::mine_dictionary(rpsl::parse_objects(net.irr_dump()));
    gen::UpdateScheduleParams params;
    params.events = 400;
    out.updates = gen::synthesize_updates(out.rib, params);
    return out;
  }();
  return w;
}

std::string write_updates_file(const std::vector<mrt::Record>& records, const std::string& name) {
  mrt::MrtWriter writer;
  for (const auto& record : records) writer.write(record);
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  EXPECT_TRUE(out);
  const auto& bytes = writer.data();
  out.write(reinterpret_cast<const char*>(bytes.data()), static_cast<long>(bytes.size()));
  return path;
}

// ------------------------------------------------------- message builders

mrt::Bgp4mpMessage wrap_update(Asn peer, bgp::UpdateMessage update) {
  mrt::Bgp4mpMessage msg;
  msg.peer_as = peer;
  msg.local_as = 64500;
  msg.peer_ip = IpAddress::parse("10.0.0.1");
  msg.local_ip = IpAddress::parse("10.0.0.2");
  msg.message = std::move(update);
  return msg;
}

mrt::Bgp4mpMessage v4_announce(Asn peer, const std::string& prefix, std::vector<Asn> path,
                               std::optional<std::uint32_t> local_pref = {}) {
  bgp::UpdateMessage update;
  update.attrs.origin = bgp::Origin::Igp;
  update.attrs.as_path = bgp::AsPath::sequence(std::move(path));
  update.attrs.next_hop = IpAddress::parse("10.0.0.1");
  update.attrs.local_pref = local_pref;
  update.nlri.push_back(Prefix::parse(prefix));
  return wrap_update(peer, std::move(update));
}

mrt::Bgp4mpMessage v4_withdraw(Asn peer, const std::string& prefix) {
  bgp::UpdateMessage update;
  update.withdrawn.push_back(Prefix::parse(prefix));
  return wrap_update(peer, std::move(update));
}

// --------------------------------------------------------- apply semantics

TEST(ObservedRibApply, AnnounceReplaceDuplicateWithdrawCounters) {
  ObservedRib rib;
  rib.apply(v4_announce(65001, "10.1.0.0/16", {65001, 65002}));
  EXPECT_EQ(rib.size(), 1u);
  EXPECT_EQ(rib.stats().announced, 1u);

  rib.apply(v4_announce(65001, "10.1.0.0/16", {65001, 65002}));
  EXPECT_EQ(rib.stats().duplicates, 1u);
  EXPECT_EQ(rib.size(), 1u);

  rib.apply(v4_announce(65001, "10.1.0.0/16", {65001, 65002}, 120));
  EXPECT_EQ(rib.stats().replaced, 1u);
  EXPECT_EQ(rib.size(), 1u);

  // Same prefix from a different peer is a distinct route.
  rib.apply(v4_announce(65009, "10.1.0.0/16", {65009, 65002}));
  EXPECT_EQ(rib.size(), 2u);

  rib.apply(v4_withdraw(65001, "10.1.0.0/16"));
  EXPECT_EQ(rib.stats().withdrawn, 1u);
  EXPECT_EQ(rib.size(), 1u);

  rib.apply(v4_withdraw(65001, "10.1.0.0/16"));
  EXPECT_EQ(rib.stats().withdrawn_missing, 1u);
  EXPECT_EQ(rib.size(), 1u);
  EXPECT_EQ(rib.stats().messages, 6u);
}

TEST(ObservedRibApply, NonUpdateMessagesAreCountedAndIgnored) {
  ObservedRib rib;
  mrt::Bgp4mpMessage keepalive;
  keepalive.peer_as = 65001;
  keepalive.message = bgp::KeepaliveMessage{};
  const auto delta = rib.apply(keepalive);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(rib.stats().non_updates, 1u);
  EXPECT_EQ(rib.stats().messages, 0u);
}

TEST(ObservedRibApply, WithdrawAndAnnounceOfSamePrefixAnnouncementWins) {
  ObservedRib rib;
  rib.apply(v4_announce(65001, "10.2.0.0/16", {65001, 65003}));
  // One UPDATE listing the prefix both withdrawn and announced (RFC 4271:
  // the announcement wins — withdraw first, then install).
  bgp::UpdateMessage update;
  update.withdrawn.push_back(Prefix::parse("10.2.0.0/16"));
  update.attrs.origin = bgp::Origin::Igp;
  update.attrs.as_path = bgp::AsPath::sequence({65001, 65004});
  update.attrs.next_hop = IpAddress::parse("10.0.0.1");
  update.nlri.push_back(Prefix::parse("10.2.0.0/16"));
  const auto delta = rib.apply(wrap_update(65001, std::move(update)));
  EXPECT_EQ(rib.size(), 1u);
  ASSERT_EQ(delta.removed.size(), 1u);
  ASSERT_EQ(delta.added.size(), 1u);
  EXPECT_EQ(delta.removed[0].as_path, (std::vector<Asn>{65001, 65003}));
  EXPECT_EQ(delta.added[0].as_path, (std::vector<Asn>{65001, 65004}));
}

TEST(ObservedRibApply, MissingAsPathThrowsWithoutMutating) {
  ObservedRib rib;
  rib.apply(v4_announce(65001, "10.3.0.0/16", {65001, 65002}));
  const auto before = rib.materialize();

  // Announce without an AS_PATH, which *also* withdraws the held route: the
  // validation must reject the whole message before the withdraw runs.
  bgp::UpdateMessage update;
  update.withdrawn.push_back(Prefix::parse("10.3.0.0/16"));
  update.nlri.push_back(Prefix::parse("10.4.0.0/16"));
  EXPECT_THROW(rib.apply(wrap_update(65001, std::move(update))), DecodeError);

  EXPECT_EQ(rib.size(), 1u);
  EXPECT_EQ(rib.materialize().routes(), before.routes());
  EXPECT_EQ(rib.stats().withdrawn, 0u);
}

TEST(ObservedRibApply, FamilyMismatchThrowsWithoutMutating) {
  ObservedRib rib;
  // A v6 prefix in the v4 NLRI field.
  bgp::UpdateMessage update;
  update.attrs.as_path = bgp::AsPath::sequence({65001, 65002});
  update.nlri.push_back(Prefix::parse("2001:db8::/32"));
  EXPECT_THROW(rib.apply(wrap_update(65001, std::move(update))), DecodeError);
  // A v6 prefix in the v4 withdrawn field.
  bgp::UpdateMessage withdraw;
  withdraw.withdrawn.push_back(Prefix::parse("2001:db8::/32"));
  EXPECT_THROW(rib.apply(wrap_update(65001, std::move(withdraw))), DecodeError);
  EXPECT_EQ(rib.size(), 0u);
}

TEST(ObservedRibApply, SeedIsLastWinsPerKey) {
  const World& w = world();
  ObservedRib rib;
  rib.seed(w.rib);
  EXPECT_EQ(rib.size(), w.rib.size());  // the generator dedups per key upstream
  EXPECT_EQ(rib.size_of(IpVersion::V4), w.rib.size_of(IpVersion::V4));
  EXPECT_EQ(rib.size_of(IpVersion::V6), w.rib.size_of(IpVersion::V6));
}

// --------------------------------------------- independent replay oracle

/// Applies the first `count` update records to the seed RIB with
/// test-local logic (an insert-or-assign/erase map keyed like the live
/// table), then runs the BATCH census over the result.  This shares no
/// apply code with src/live/ — it is the ground truth the pipeline's
/// epochs are measured against.
std::vector<std::uint8_t> replay_reference(const World& w, std::size_t count,
                                           ThreadPool& pool) {
  std::map<RouteKey, mrt::ObservedRoute> table;
  for (const auto& route : w.rib.routes()) {
    table.insert_or_assign(RouteKey{route.af, route.prefix, route.peer_asn}, route);
  }
  std::uint32_t last_ts = kSeedTimestamp;
  for (std::size_t i = 0; i < count && i < w.updates.size(); ++i) {
    const auto& record = w.updates[i];
    const auto& msg = std::get<mrt::Bgp4mpMessage>(record.body);
    const auto& update = std::get<bgp::UpdateMessage>(msg.message);
    for (const auto& p : update.withdrawn) {
      table.erase(RouteKey{IpVersion::V4, p, msg.peer_as});
    }
    if (update.attrs.mp_unreach) {
      for (const auto& p : update.attrs.mp_unreach->withdrawn) {
        table.erase(RouteKey{IpVersion::V6, p, msg.peer_as});
      }
    }
    const auto announce = [&](IpVersion af, const Prefix& p) {
      mrt::ObservedRoute route;
      route.af = af;
      route.prefix = p;
      route.peer_asn = msg.peer_as;
      route.as_path = update.attrs.as_path.flatten();
      route.local_pref = update.attrs.local_pref;
      route.communities = update.attrs.communities;
      table.insert_or_assign(RouteKey{af, p, msg.peer_as}, std::move(route));
    };
    for (const auto& p : update.nlri) announce(IpVersion::V4, p);
    if (update.attrs.mp_reach) {
      for (const auto& p : update.attrs.mp_reach->nlri) announce(IpVersion::V6, p);
    }
    last_ts = record.timestamp;
  }

  mrt::ObservedRib rib;
  for (const auto& [key, route] : table) rib.add(route);
  core::InferenceConfig config;
  const auto report = core::run_census(rib, w.dict, config, pool);
  return snapshot::Writer::encode(core::to_snapshot(report, kSource, last_ts));
}

TEST(IncrementalCensus, SeedEpochMatchesBatchCensus) {
  const World& w = world();
  ThreadPool pool(1);
  core::InferenceConfig config;
  IncrementalCensus census(w.rib, w.dict, config, kSource, kSeedTimestamp);
  const auto epoch = census.recompute(pool);
  EXPECT_EQ(epoch.applied, 0u);
  EXPECT_EQ(epoch.last_timestamp, kSeedTimestamp);
  EXPECT_EQ(snapshot::Writer::encode(epoch.snap), replay_reference(w, 0, pool))
      << "epoch 0 must equal the batch census over the seed RIB";
}

// The acceptance matrix: every epoch the pipeline cuts — at ring capacity
// 2 (maximal stage interleaving), 64, and the 1024 default, with the epoch
// pool at 1 and 4 workers — is byte-identical to the independent replay of
// the same update prefix.
TEST(LivePipeline, EpochsMatchIndependentReplayAtAnyCapacityAndJobs) {
  const World& w = world();
  const std::string path = write_updates_file(w.updates, "live_equiv_updates.mrt");

  // Ground truth, computed once per distinct epoch boundary.
  std::map<std::uint64_t, std::vector<std::uint8_t>> reference;

  for (const std::size_t capacity : {std::size_t{2}, std::size_t{64}, std::size_t{1024}}) {
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
      ThreadPool pool(jobs);
      core::InferenceConfig config;
      config.threads = jobs;
      IncrementalCensus census(w.rib, w.dict, config, kSource, kSeedTimestamp);
      PipelineConfig pipeline_config;
      pipeline_config.ring_capacity = capacity;
      pipeline_config.epoch_every = 150;
      Pipeline pipeline(census, pipeline_config);

      std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> epochs;
      const auto result = pipeline.run({path}, pool, [&](const EpochReport& epoch) {
        epochs.emplace_back(epoch.applied, snapshot::Writer::encode(epoch.snap));
      });
      ASSERT_FALSE(result.stopped);
      ASSERT_EQ(result.applied, w.updates.size());
      ASSERT_EQ(result.records, w.updates.size());
      ASSERT_GE(epochs.size(), 2u) << "expected mid-stream epochs plus the final one";
      ASSERT_EQ(epochs.back().first, w.updates.size());

      ThreadPool reference_pool(1);
      for (const auto& [applied, bytes] : epochs) {
        auto it = reference.find(applied);
        if (it == reference.end()) {
          it = reference.emplace(applied, replay_reference(w, applied, reference_pool)).first;
        }
        EXPECT_EQ(bytes, it->second)
            << "epoch at applied=" << applied << " diverged from the sequential replay"
            << " (capacity=" << capacity << ", jobs=" << jobs << ")";
      }
    }
  }
  std::remove(path.c_str());
}

// Live-tier counters equal the batch census on the final route set (with
// Rosetta off: the live tier is community-only by contract).
TEST(IncrementalCensus, LiveStatsMatchBatchCensusAfterStream) {
  const World& w = world();
  ThreadPool pool(1);
  core::InferenceConfig config;
  config.use_rosetta = false;
  IncrementalCensus census(w.rib, w.dict, config, kSource, kSeedTimestamp);
  for (const auto& record : w.updates) {
    census.apply(record.timestamp, std::get<mrt::Bgp4mpMessage>(record.body));
  }
  ASSERT_EQ(census.applied(), w.updates.size());

  const auto epoch = census.recompute(pool);
  const auto& report = epoch.report;
  const auto& stats = census.stats();

  EXPECT_EQ(stats.routes, census.rib().size());
  EXPECT_EQ(stats.v4_paths, report.v4_paths);
  EXPECT_EQ(stats.v6_paths, report.v6_paths);
  EXPECT_EQ(stats.v4_links, report.v4_links);
  EXPECT_EQ(stats.v6_links, report.v6_links);
  EXPECT_EQ(stats.dual_links, report.dual_links);
  EXPECT_EQ(stats.links_with_votes_v4, report.inferred.community_v4.links_with_votes);
  EXPECT_EQ(stats.links_with_votes_v6, report.inferred.community_v6.links_with_votes);
  EXPECT_EQ(stats.conflicted_links_v4, report.inferred.community_v4.conflicted_links);
  EXPECT_EQ(stats.conflicted_links_v6, report.inferred.community_v6.conflicted_links);
  EXPECT_EQ(stats.typed_links_v4, report.inferred.community_v4.rels.size());
  EXPECT_EQ(stats.typed_links_v6, report.inferred.community_v6.rels.size());
  EXPECT_EQ(stats.total_votes, report.inferred.community_v4.total_votes +
                                   report.inferred.community_v6.total_votes);
  EXPECT_EQ(stats.hybrid_links, report.hybrids.hybrids.size());
  EXPECT_EQ(census.live_rels(IpVersion::V4).size(),
            report.inferred.community_v4.rels.size());
  EXPECT_EQ(census.live_rels(IpVersion::V6).size(),
            report.inferred.community_v6.rels.size());
}

// A malformed update mid-stream surfaces from apply() with the census (and
// its RIB) exactly as before the bad message.
TEST(IncrementalCensus, RejectedUpdateLeavesCensusUntouched) {
  const World& w = world();
  ThreadPool pool(1);
  core::InferenceConfig config;
  IncrementalCensus census(w.rib, w.dict, config, kSource, kSeedTimestamp);
  const auto before = census.stats();
  const auto size_before = census.rib().size();

  bgp::UpdateMessage bad;  // announce with no AS_PATH
  bad.nlri.push_back(Prefix::parse("10.99.0.0/16"));
  EXPECT_THROW(census.apply(kSeedTimestamp + 1, wrap_update(65001, std::move(bad))),
               DecodeError);

  EXPECT_EQ(census.applied(), 0u);
  EXPECT_EQ(census.rib().size(), size_before);
  EXPECT_EQ(census.stats().routes, before.routes);
  EXPECT_EQ(census.stats().total_votes, before.total_votes);
  EXPECT_EQ(census.stats().v6_links, before.v6_links);
}

// Valley telemetry is monotonic and counts every announced route once.
TEST(IncrementalCensus, ValleyTelemetryIsMonotonic) {
  const World& w = world();
  core::InferenceConfig config;
  IncrementalCensus census(w.rib, w.dict, config, kSource, kSeedTimestamp);
  const auto& stats = census.stats();
  std::uint64_t last_total = stats.valley_free_seen + stats.valleys_seen +
                             stats.incomplete_seen;
  EXPECT_GT(last_total, 0u) << "the seed fold classifies every seeded route";
  for (const auto& record : w.updates) {
    census.apply(record.timestamp, std::get<mrt::Bgp4mpMessage>(record.body));
    const std::uint64_t total =
        stats.valley_free_seen + stats.valleys_seen + stats.incomplete_seen;
    ASSERT_GE(total, last_total);
    last_total = total;
  }
}

}  // namespace
}  // namespace htor::live
