// Policy-constrained (valley-free) shortest paths and reachability.
//
// The constrained BFS runs over a two-state product graph: state 0 while the
// path is still climbing (customer-to-provider links allowed), state 1 once
// it has crossed a peering link or started descending (provider-to-customer
// links only).  This yields shortest *valley-free* hop distances, which is
// what the paper's Figure 2 metric and the valley-necessity test need.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topology/as_graph.hpp"
#include "topology/relationship.hpp"

namespace htor {

/// Directed edge classification as seen from the tail node.
enum class EdgeKind : std::uint8_t {
  Up,    ///< toward a provider (c2p)
  Down,  ///< toward a customer (p2c)
  Peer,  ///< peering
  Sib,   ///< sibling (phase-transparent)
};

/// Classify rel(a, b) as the kind of the directed edge a -> b.
/// Precondition: rel != Unknown.
EdgeKind edge_kind(Relationship rel_a_to_b);

struct DirectedEdge {
  std::uint32_t to = 0;
  EdgeKind kind = EdgeKind::Down;
};

using AdjacencyList = std::vector<std::vector<DirectedEdge>>;

inline constexpr std::int32_t kUnreachable = -1;

/// Shortest valley-free hop distance from `src` to every node over `adj`;
/// kUnreachable where no valley-free path exists.  dist[src] == 0.
std::vector<std::int32_t> valley_free_distances(const AdjacencyList& adj, std::uint32_t src);

/// Valley-free routing oracle over one address family of an AS graph.
/// Links whose relationship is Unknown are excluded (they cannot be
/// classified, hence cannot be policy-routed).
class ValleyFreeRouting {
 public:
  ValleyFreeRouting(const AsGraph& graph, const RelationshipMap& rels, IpVersion af);

  /// Dense node count.
  std::size_t node_count() const { return index_of_.size(); }

  bool has_as(Asn asn) const { return index_of_.count(asn) != 0; }

  /// Shortest valley-free distance; kUnreachable when none (or an endpoint
  /// is absent).
  std::int32_t distance(Asn src, Asn dst) const;

  bool reachable(Asn src, Asn dst) const { return distance(src, dst) >= 0; }

  /// All distances from `src`, keyed by dense index; empty when src absent.
  std::vector<std::int32_t> distances_from(Asn src) const;

  /// Dense index of an AS (must exist).
  std::uint32_t index_of(Asn asn) const;
  Asn asn_of(std::uint32_t index) const { return asns_[index]; }

 private:
  std::unordered_map<Asn, std::uint32_t> index_of_;
  std::vector<Asn> asns_;
  AdjacencyList adj_;
};

}  // namespace htor
