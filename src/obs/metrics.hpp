// Process-wide observability: a registry of named counters, gauges, and
// log2-bucket histograms, shared by every subsystem (MRT ingest, the census
// pipeline, the snapshot store, the thread pool, the query daemon).
//
// Design goals, in order:
//
//   1. Hot-path increments must be uncontended.  Counters and histograms are
//      *sharded*: each metric owns a fixed array of cache-line-aligned
//      atomic cells, a thread picks its cell by a thread-local shard id, and
//      increments are relaxed fetch_adds on a line no other hot thread
//      touches.  Scrapes merge the shards — the same shard-then-merge
//      discipline as core/parallel.hpp, applied to telemetry.  An increment
//      costs a handful of nanoseconds (BM_MetricsIncrement pins this).
//   2. Handles are cheap and safe.  counter()/gauge()/histogram() return
//      trivially copyable handles pointing at registry-owned storage;
//      looking a metric up twice yields handles to the same cells.  The
//      registry must outlive its handles (the process-global one trivially
//      does).
//   3. Rendering is deterministic.  Metrics render in (name, labels) order,
//      so the Prometheus text exposition for a given set of values is
//      byte-stable — the golden-text test depends on it.
//
// The process-global instance is MetricsRegistry::global().  Library code
// (stream reader, snapshot store, spans) records there; the daemon's
// GET /metrics renders it.  Tests that assert absolute values either use a
// private registry instance or call reset_values() for isolation.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace htor::obs {

/// Label set for one metric instance, e.g. {{"endpoint", "link"}}.  Order is
/// preserved as given (callers pass a canonical order; the registry treats
/// the rendered label string as part of the metric's identity).
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

/// Shard count for counter/histogram cells.  A power of two comfortably
/// above the worker counts this project runs with; per-thread shard ids map
/// onto it with a mask.
inline constexpr std::size_t kShards = 16;

/// First call on a thread: claim the next shard id off the process counter.
std::size_t claim_shard() noexcept;

/// Index of the calling thread's shard.  Thread ids are handed out once per
/// thread from a process counter, so two threads only share a cell when
/// more than kShards threads exist — and even then the cell is an atomic,
/// so sharing costs throughput, never correctness.  Inline on purpose: this
/// sits inside every counter increment, and an out-of-line call here is
/// measurable against the <10ns BM_MetricsIncrement budget.
inline std::size_t shard_index() noexcept {
  thread_local const std::size_t shard = claim_shard();
  return shard;
}

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct CounterCells {
  std::array<CounterCell, kShards> cells;

  void add(std::uint64_t n) noexcept {
    cells[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& cell : cells) sum += cell.value.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() noexcept {
    for (auto& cell : cells) cell.value.store(0, std::memory_order_relaxed);
  }
};

/// Histograms bucket by log2: bucket i counts samples with value <= 2^i
/// (exclusive buckets, not cumulative), one overflow bucket past the last
/// bound, plus a running sum for mean/rate math.  16 value buckets cover
/// 1 µs .. ~32 ms, matching the daemon's original latency histogram.
inline constexpr std::size_t kHistogramBuckets = 16;

struct alignas(64) HistogramShard {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets + 1> buckets{};
  std::atomic<std::uint64_t> sum{0};
};

struct HistogramCells {
  std::array<HistogramShard, kShards> shards;

  void record(std::uint64_t value) noexcept;
  void reset() noexcept;
};

struct GaugeCell {
  std::atomic<std::int64_t> value{0};
};

}  // namespace detail

/// Monotonic counter handle.  Default-constructed handles are inert no-ops
/// so instrumented code never needs a "metrics enabled?" branch.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) const noexcept {
    if (cells_ != nullptr) cells_->add(n);
  }
  std::uint64_t value() const noexcept { return cells_ == nullptr ? 0 : cells_->total(); }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCells* cells) : cells_(cells) {}

  detail::CounterCells* cells_ = nullptr;  ///< owned by the registry
};

/// Set/add gauge handle (a single atomic — set() cannot merge shards).
class Gauge {
 public:
  Gauge() = default;

  void set(std::int64_t v) const noexcept {
    if (cell_ != nullptr) cell_->value.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) const noexcept {
    if (cell_ != nullptr) cell_->value.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return cell_ == nullptr ? 0 : cell_->value.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}

  detail::GaugeCell* cell_ = nullptr;
};

/// Log2 histogram handle.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = detail::kHistogramBuckets;

  Histogram() = default;

  void record(std::uint64_t value) const noexcept {
    if (cells_ != nullptr) cells_->record(value);
  }

  /// Merged view across shards.  counts[i] holds samples <= 2^i that missed
  /// every smaller bucket (exclusive); `overflow` is everything past the
  /// last bound.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t overflow = 0;
    std::uint64_t sum = 0;

    std::uint64_t total() const {
      std::uint64_t n = overflow;
      for (const auto c : counts) n += c;
      return n;
    }
  };
  Snapshot snapshot() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCells* cells) : cells_(cells) {}

  detail::HistogramCells* cells_ = nullptr;
};

class MetricsRegistry;

/// RAII registration of a *polled* metric: the callback runs at scrape time
/// (queue depths, epochs — values owned by some live object rather than
/// accumulated in the registry).  Destroying the handle unregisters the
/// callback, so an owner registers in its constructor and can never leave a
/// dangling callback behind.  Several live registrations may share one
/// (name, labels) identity; scrapes sum them (two daemons' pools of the
/// same name report their combined depth).
class CallbackMetric {
 public:
  CallbackMetric() = default;
  CallbackMetric(CallbackMetric&& other) noexcept;
  CallbackMetric& operator=(CallbackMetric&& other) noexcept;
  CallbackMetric(const CallbackMetric&) = delete;
  CallbackMetric& operator=(const CallbackMetric&) = delete;
  ~CallbackMetric();

 private:
  friend class MetricsRegistry;
  CallbackMetric(MetricsRegistry* registry, std::uint64_t id)
      : registry_(registry), id_(id) {}

  MetricsRegistry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem shares.  Never destroyed
  /// (handles into it stay valid through static teardown).
  static MetricsRegistry& global();

  /// Find-or-create.  Re-requesting a name+labels pair returns a handle to
  /// the same cells; requesting it as a different metric kind throws
  /// InvalidArgument.
  Counter counter(std::string_view name, Labels labels = {});
  Gauge gauge(std::string_view name, Labels labels = {});
  Histogram histogram(std::string_view name, Labels labels = {});

  /// Register a polled metric; `kind` picks the exposition TYPE.  The
  /// callback must stay valid until the returned handle is destroyed and
  /// must be safe to call from any thread.
  enum class Kind { Counter, Gauge };
  CallbackMetric callback(std::string_view name, Labels labels, Kind kind,
                          std::function<std::int64_t()> fn);

  /// Prometheus text exposition (version 0.0.4) of every metric, in
  /// deterministic (name, labels) order: # TYPE line once per family, then
  /// one sample per label set; histograms render cumulative `le` buckets
  /// plus _sum and _count.
  std::string render_prometheus() const;

  /// Value lookup for tests and JSON rendering; zero / empty snapshot when
  /// the metric does not exist.
  std::uint64_t counter_value(std::string_view name, const Labels& labels = {}) const;
  std::int64_t gauge_value(std::string_view name, const Labels& labels = {}) const;
  Histogram::Snapshot histogram_snapshot(std::string_view name, const Labels& labels = {}) const;

  /// Last value a scrape observed for callback metric (name, labels) — the
  /// cached last-scrape state, NOT a fresh poll.  Zero before the first
  /// scrape and after reset_values().
  std::int64_t polled_value(std::string_view name, const Labels& labels = {}) const;

  /// One polled sample: the rendered identity ("name{labels}") and value.
  struct PolledSample {
    std::string name;    ///< metric family name
    std::string labels;  ///< rendered label string, "" when unlabeled
    std::int64_t value = 0;
  };
  /// Poll every registered callback whose name starts with `prefix` (sums
  /// co-registered entries per identity, same as a Prometheus scrape) and
  /// return the samples in deterministic (name, labels) order.  Updates the
  /// last-scrape cache — this is how /v1/metrics picks up callback gauges
  /// without the daemon knowing their names.
  std::vector<PolledSample> polled_samples(std::string_view prefix = {}) const;

  /// One histogram family member, for the census --stats stage table.
  struct HistogramRow {
    std::string labels;  ///< rendered label string, "" when unlabeled
    Histogram::Snapshot values;
  };
  /// All label sets of histogram family `name`, in label order.
  std::vector<HistogramRow> histogram_family(std::string_view name) const;

  /// Zero every counter/gauge/histogram value and drop callback metrics'
  /// cached last-scrape state.  Handles stay valid; metric identities and
  /// callback registrations persist (the next scrape re-polls them).  For
  /// test isolation against the global registry — concurrent increments
  /// during a reset land before or after it, never corrupt state.
  void reset_values();

 private:
  friend class CallbackMetric;

  enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

  struct Metric {
    MetricKind kind;
    std::unique_ptr<detail::CounterCells> counter;
    std::unique_ptr<detail::GaugeCell> gauge;
    std::unique_ptr<detail::HistogramCells> histogram;
  };

  struct CallbackEntry {
    std::uint64_t id = 0;
    Kind kind = Kind::Gauge;
    std::function<std::int64_t()> fn;
  };

  /// Identity key: name first so families group; the rendered label string
  /// second so members order deterministically within a family.
  using Key = std::pair<std::string, std::string>;

  Metric& find_or_create(std::string_view name, const Labels& labels, MetricKind kind);
  const Metric* find(std::string_view name, const Labels& labels, MetricKind kind) const;
  void unregister_callback(std::uint64_t id);

  mutable std::mutex mutex_;
  std::map<Key, Metric> metrics_;
  std::map<Key, std::vector<CallbackEntry>> callbacks_;
  /// Last-scrape values of callback metrics, keyed like callbacks_.  Filled
  /// by render_prometheus()/polled_samples(), read by polled_value(),
  /// cleared by reset_values().  Mutable: scrapes are logically const.
  mutable std::map<Key, std::int64_t> last_polled_;
  std::uint64_t next_callback_id_ = 1;
};

/// Render `labels` as the canonical `{k="v",...}` string ("" when empty).
/// Values are escaped per the exposition format: backslash, quote, newline.
std::string render_labels(const Labels& labels);

}  // namespace htor::obs
