#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace htor::obs {

namespace detail {

std::size_t claim_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
}

namespace {

/// Bucket index for a sample: smallest i with value <= 2^i, or kBuckets for
/// overflow.  Matches the daemon's original latency bucketing exactly.
std::size_t bucket_for(std::uint64_t value) noexcept {
  std::uint64_t bound = 1;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i, bound <<= 1) {
    if (value <= bound) return i;
  }
  return kHistogramBuckets;
}

}  // namespace

void HistogramCells::record(std::uint64_t value) noexcept {
  auto& shard = shards[shard_index()];
  shard.buckets[bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

void HistogramCells::reset() noexcept {
  for (auto& shard : shards) {
    for (auto& bucket : shard.buckets) bucket.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

}  // namespace detail

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  if (cells_ == nullptr) return out;
  for (const auto& shard : cells_->shards) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out.counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    out.overflow += shard.buckets[kBuckets].load(std::memory_order_relaxed);
    out.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return out;
}

CallbackMetric::CallbackMetric(CallbackMetric&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

CallbackMetric& CallbackMetric::operator=(CallbackMetric&& other) noexcept {
  if (this != &other) {
    if (registry_ != nullptr) registry_->unregister_callback(id_);
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

CallbackMetric::~CallbackMetric() {
  if (registry_ != nullptr) registry_->unregister_callback(id_);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    for (const char c : value) {
      switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    out += '"';
  }
  out += '}';
  return out;
}

MetricsRegistry::Metric& MetricsRegistry::find_or_create(std::string_view name,
                                                         const Labels& labels,
                                                         MetricKind kind) {
  // Caller holds mutex_.
  Key key{std::string(name), render_labels(labels)};
  auto it = metrics_.find(key);
  if (it != metrics_.end()) {
    if (it->second.kind != kind) {
      throw InvalidArgument("metric '" + key.first + "' already registered as a different kind");
    }
    return it->second;
  }
  // A family must be homogeneous: reject "foo" as a counter when any other
  // label set of "foo" exists as a gauge (the TYPE line would lie).
  auto family = metrics_.lower_bound(Key{key.first, ""});
  if (family != metrics_.end() && family->first.first == key.first &&
      family->second.kind != kind) {
    throw InvalidArgument("metric family '" + key.first + "' has mixed kinds");
  }
  Metric metric;
  metric.kind = kind;
  switch (kind) {
    case MetricKind::Counter:
      metric.counter = std::make_unique<detail::CounterCells>();
      break;
    case MetricKind::Gauge:
      metric.gauge = std::make_unique<detail::GaugeCell>();
      break;
    case MetricKind::Histogram:
      metric.histogram = std::make_unique<detail::HistogramCells>();
      break;
  }
  return metrics_.emplace(std::move(key), std::move(metric)).first->second;
}

const MetricsRegistry::Metric* MetricsRegistry::find(std::string_view name,
                                                     const Labels& labels,
                                                     MetricKind kind) const {
  // Caller holds mutex_.
  const auto it = metrics_.find(Key{std::string(name), render_labels(labels)});
  if (it == metrics_.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

Counter MetricsRegistry::counter(std::string_view name, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Counter(find_or_create(name, labels, MetricKind::Counter).counter.get());
}

Gauge MetricsRegistry::gauge(std::string_view name, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Gauge(find_or_create(name, labels, MetricKind::Gauge).gauge.get());
}

Histogram MetricsRegistry::histogram(std::string_view name, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Histogram(find_or_create(name, labels, MetricKind::Histogram).histogram.get());
}

CallbackMetric MetricsRegistry::callback(std::string_view name, Labels labels, Kind kind,
                                         std::function<std::int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_callback_id_++;
  auto& entries = callbacks_[Key{std::string(name), render_labels(labels)}];
  if (!entries.empty() && entries.front().kind != kind) {
    throw InvalidArgument("callback metric '" + std::string(name) +
                          "' already registered as a different kind");
  }
  entries.push_back(CallbackEntry{id, kind, std::move(fn)});
  return CallbackMetric(this, id);
}

void MetricsRegistry::unregister_callback(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = callbacks_.begin(); it != callbacks_.end(); ++it) {
    auto& entries = it->second;
    const auto entry = std::find_if(entries.begin(), entries.end(),
                                    [id](const CallbackEntry& e) { return e.id == id; });
    if (entry != entries.end()) {
      entries.erase(entry);
      if (entries.empty()) callbacks_.erase(it);
      return;
    }
  }
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name, const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Metric* metric = find(name, labels, MetricKind::Counter);
  return metric == nullptr ? 0 : metric->counter->total();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name, const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Metric* metric = find(name, labels, MetricKind::Gauge);
  return metric == nullptr ? 0 : metric->gauge->value.load(std::memory_order_relaxed);
}

Histogram::Snapshot MetricsRegistry::histogram_snapshot(std::string_view name,
                                                        const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Metric* metric = find(name, labels, MetricKind::Histogram);
  return metric == nullptr ? Histogram::Snapshot{} : Histogram(metric->histogram.get()).snapshot();
}

std::vector<MetricsRegistry::HistogramRow> MetricsRegistry::histogram_family(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramRow> rows;
  for (auto it = metrics_.lower_bound(Key{std::string(name), ""});
       it != metrics_.end() && it->first.first == name; ++it) {
    if (it->second.kind != MetricKind::Histogram) continue;
    rows.push_back(HistogramRow{it->first.second,
                                Histogram(it->second.histogram.get()).snapshot()});
  }
  return rows;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, metric] : metrics_) {
    switch (metric.kind) {
      case MetricKind::Counter: metric.counter->reset(); break;
      case MetricKind::Gauge:
        metric.gauge->value.store(0, std::memory_order_relaxed);
        break;
      case MetricKind::Histogram: metric.histogram->reset(); break;
    }
  }
  // Callback metrics keep their registrations (the values live with the
  // callers), but the cached last-scrape state is registry state and must
  // not leak across test boundaries.
  last_polled_.clear();
}

std::int64_t MetricsRegistry::polled_value(std::string_view name, const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = last_polled_.find(Key{std::string(name), render_labels(labels)});
  return it == last_polled_.end() ? 0 : it->second;
}

std::vector<MetricsRegistry::PolledSample> MetricsRegistry::polled_samples(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PolledSample> out;
  // callbacks_ is ordered by (name, labels), so the result is deterministic
  // and the prefix range is contiguous.
  for (auto it = callbacks_.lower_bound(Key{std::string(prefix), ""});
       it != callbacks_.end(); ++it) {
    const auto& [key, entries] = *it;
    if (key.first.compare(0, prefix.size(), prefix) != 0) break;
    std::int64_t total = 0;
    for (const auto& entry : entries) total += entry.fn();
    last_polled_[key] = total;
    out.push_back(PolledSample{key.first, key.second, total});
  }
  return out;
}

std::string MetricsRegistry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);

  // Merge accumulated metrics and polled callbacks into one ordered plan so
  // families interleave correctly whatever mix they come from.
  struct Sample {
    MetricKind kind;
    const Metric* metric = nullptr;                     // accumulated
    const std::vector<CallbackEntry>* polled = nullptr; // or callback-backed
  };
  std::map<Key, Sample> plan;
  for (const auto& [key, metric] : metrics_) {
    plan[key] = Sample{metric.kind, &metric, nullptr};
  }
  for (const auto& [key, entries] : callbacks_) {
    // Accumulated identity wins on collision; callbacks are for values the
    // registry does not own, so colliding names indicate caller error and
    // the deterministic choice keeps rendering total.
    auto [it, inserted] = plan.emplace(
        key, Sample{entries.front().kind == Kind::Counter ? MetricKind::Counter
                                                          : MetricKind::Gauge,
                    nullptr, &entries});
    (void)it;
    (void)inserted;
  }

  std::ostringstream out;
  std::string last_family;
  for (const auto& [key, sample] : plan) {
    const auto& [name, labels] = key;
    if (name != last_family) {
      const char* type = sample.kind == MetricKind::Counter ? "counter"
                         : sample.kind == MetricKind::Gauge ? "gauge"
                                                            : "histogram";
      out << "# TYPE " << name << ' ' << type << '\n';
      last_family = name;
    }
    if (sample.polled != nullptr) {
      std::int64_t total = 0;
      for (const auto& entry : *sample.polled) total += entry.fn();
      last_polled_[key] = total;
      out << name << labels << ' ' << total << '\n';
      continue;
    }
    switch (sample.kind) {
      case MetricKind::Counter:
        out << name << labels << ' ' << sample.metric->counter->total() << '\n';
        break;
      case MetricKind::Gauge:
        out << name << labels << ' '
            << sample.metric->gauge->value.load(std::memory_order_relaxed) << '\n';
        break;
      case MetricKind::Histogram: {
        const auto snap = Histogram(sample.metric->histogram.get()).snapshot();
        // Prometheus buckets are cumulative; ours are exclusive — sum up.
        const std::string prefix =
            labels.empty() ? "{" : labels.substr(0, labels.size() - 1) + ",";
        std::uint64_t cumulative = 0;
        std::uint64_t bound = 1;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i, bound <<= 1) {
          cumulative += snap.counts[i];
          out << name << "_bucket" << prefix << "le=\"" << bound << "\"} "
              << cumulative << '\n';
        }
        cumulative += snap.overflow;
        out << name << "_bucket" << prefix << "le=\"+Inf\"} " << cumulative << '\n';
        out << name << "_sum" << labels << ' ' << snap.sum << '\n';
        out << name << "_count" << labels << ' ' << cumulative << '\n';
        break;
      }
    }
  }
  return out.str();
}

}  // namespace htor::obs
