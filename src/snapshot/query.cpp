#include "snapshot/query.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"
#include "util/bytes.hpp"
#include "util/mmap_file.hpp"

namespace htor::snapshot {

namespace {

/// Count one open attempt; failures (missing file, probe/validate rejection,
/// decode error) bump the failure counter before the exception continues to
/// the caller — the daemon's reload counters stay, this is the layer below.
struct OpenScope {
  bool ok = false;

  explicit OpenScope(const char* mode) : mode_(mode) {}
  ~OpenScope() {
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("htor_snapshot_opens_total", {{"mode", mode_}}).inc();
    if (!ok) registry.counter("htor_snapshot_open_failures_total", {{"mode", mode_}}).inc();
  }

 private:
  const char* mode_;
};

}  // namespace

QueryIndex::QueryIndex(std::shared_ptr<const MappedSnapshot> image,
                       std::uint32_t source_version, std::uint64_t file_bytes)
    : image_(std::move(image)), source_version_(source_version), file_bytes_(file_bytes) {}

QueryIndex::QueryIndex(const Snapshot& snap)
    : QueryIndex(MappedSnapshot::from_bytes(Writer::encode(snap)), snap.header.version, 0) {
  file_bytes_ = image_->byte_size();
}

QueryIndex QueryIndex::open(const std::string& path) {
  OBS_SPAN("snapshot.open");
  OpenScope scope("eager");
  std::vector<std::uint8_t> bytes = load_bytes(path);
  const std::uint64_t file_bytes = bytes.size();
  const std::uint32_t version = Reader::probe(bytes).version;
  if (version == 2) {
    QueryIndex index{MappedSnapshot::from_bytes(std::move(bytes)), version, file_bytes};
    scope.ok = true;
    return index;
  }
  // v1: eager decode, then re-encode as an in-memory v2 image.
  const Snapshot snap = Reader::decode(bytes);
  QueryIndex index{MappedSnapshot::from_bytes(Writer::encode(snap)), version, file_bytes};
  scope.ok = true;
  return index;
}

QueryIndex QueryIndex::open_mapped(const std::string& path) {
  OBS_SPAN("snapshot.open");
  OpenScope scope("mapped");
  MmapFile file(path);
  const std::uint64_t file_bytes = file.size();
  const std::uint32_t version = Reader::probe(file.data()).version;
  if (version == 2) {
    QueryIndex index{MappedSnapshot::from_map(std::move(file)), version, file_bytes};
    scope.ok = true;
    return index;
  }
  const Snapshot snap = Reader::decode(file.data());
  QueryIndex index{MappedSnapshot::from_bytes(Writer::encode(snap)), version, file_bytes};
  scope.ok = true;
  return index;
}

std::optional<QueryIndex::LinkInfo> QueryIndex::lookup(Asn a, Asn b) const {
  const auto index = view().find_link(a, b);
  if (!index) return std::nullopt;
  const V2View::LinkRow row = view().link_at(*index);
  LinkInfo info{row.rel_v4, row.rel_v6, row.hybrid};
  if (a > b) {
    // Stored orientation is first -> second; flip for the caller's view.
    info.rel_v4 = reverse(info.rel_v4);
    info.rel_v6 = reverse(info.rel_v6);
  }
  return info;
}

std::vector<QueryIndex::Neighbor> QueryIndex::neighbors(Asn asn) const {
  std::vector<Neighbor> out;
  const auto id = view().find_asn(asn);
  if (!id) return out;
  const auto [begin, end] = view().adj_range(*id);
  out.reserve(end - begin);
  for (std::uint64_t i = begin; i < end; ++i) {
    const V2View::AdjEntry entry = view().adj_at(i);
    const V2View::LinkRow row = view().link_at(entry.link_index);
    Neighbor n;
    n.asn = view().asn_at(entry.neighbor_id);
    n.info = {row.rel_v4, row.rel_v6, row.hybrid};
    if (asn == row.second) {
      n.info.rel_v4 = reverse(n.info.rel_v4);
      n.info.rel_v6 = reverse(n.info.rel_v6);
    }
    out.push_back(n);
  }
  return out;
}

}  // namespace htor::snapshot
