#include "topology/customer_tree.hpp"

#include <deque>

namespace htor {

CustomerTreeAnalysis::CustomerTreeAnalysis(const RelationshipMap& rels) {
  auto intern = [this](Asn asn) -> std::uint32_t {
    auto [it, inserted] = index_of_.try_emplace(asn, static_cast<std::uint32_t>(asns_.size()));
    if (inserted) {
      asns_.push_back(asn);
      down_.emplace_back();
      adj_.emplace_back();
    }
    return it->second;
  };

  rels.for_each([&](const LinkKey& key, Relationship rel) {
    std::uint32_t provider;
    std::uint32_t customer;
    if (rel == Relationship::P2C) {
      provider = intern(key.first);
      customer = intern(key.second);
    } else if (rel == Relationship::C2P) {
      provider = intern(key.second);
      customer = intern(key.first);
    } else {
      return;  // only transit links form customer trees
    }
    down_[provider].push_back(customer);
    adj_[provider].push_back({customer, EdgeKind::Down});
    adj_[customer].push_back({provider, EdgeKind::Up});
    ++edges_;
  });
}

std::vector<Asn> CustomerTreeAnalysis::tree_of(Asn root) const {
  std::vector<Asn> out;
  auto it = index_of_.find(root);
  if (it == index_of_.end()) return {root};
  std::vector<bool> seen(asns_.size(), false);
  std::deque<std::uint32_t> queue{it->second};
  seen[it->second] = true;
  while (!queue.empty()) {
    const std::uint32_t node = queue.front();
    queue.pop_front();
    out.push_back(asns_[node]);
    for (std::uint32_t c : down_[node]) {
      if (!seen[c]) {
        seen[c] = true;
        queue.push_back(c);
      }
    }
  }
  return out;
}

std::size_t CustomerTreeAnalysis::cone_size(Asn root) const {
  return tree_of(root).size() - 1;
}

CustomerTreeAnalysis::Metrics CustomerTreeAnalysis::union_metrics() const {
  Metrics m;
  m.edges = edges_;
  std::uint64_t total = 0;
  for (std::uint32_t src = 0; src < asns_.size(); ++src) {
    if (adj_[src].empty()) continue;
    ++m.nodes;
    const auto dist = valley_free_distances(adj_, src);
    for (std::uint32_t dst = 0; dst < asns_.size(); ++dst) {
      if (dst == src || dist[dst] == kUnreachable) continue;
      total += static_cast<std::uint64_t>(dist[dst]);
      ++m.reachable_pairs;
      if (dist[dst] > m.diameter) m.diameter = dist[dst];
    }
  }
  if (m.reachable_pairs > 0) {
    m.avg_path_length = static_cast<double>(total) / static_cast<double>(m.reachable_pairs);
  }
  return m;
}

}  // namespace htor
