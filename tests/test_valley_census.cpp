// Tests for the valley census: classification plumbing and the necessity
// test (no valley-free alternative), on handcrafted maps and on the
// generated Internet.
#include <gtest/gtest.h>

#include "core/valley_census.hpp"
#include "gen/internet.hpp"

namespace htor::core {
namespace {

TEST(ValleyCensus, CountsClasses) {
  RelationshipMap rels;
  rels.set(1, 2, Relationship::C2P);
  rels.set(2, 3, Relationship::P2C);
  rels.set(3, 4, Relationship::C2P);  // 2-3-4 is a valley turn
  rels.set(5, 6, Relationship::P2P);

  PathStore paths;
  paths.add({1, 2, 3});     // valley-free (up, down)
  paths.add({2, 3, 4});     // valley (down then up)
  paths.add({1, 2, 3, 4});  // valley
  paths.add({5, 6, 7});     // incomplete: 6-7 unknown

  const auto census = census_valleys(paths, rels);
  EXPECT_EQ(census.paths, 4u);
  EXPECT_EQ(census.valley_free, 1u);
  EXPECT_EQ(census.valley, 2u);
  EXPECT_EQ(census.incomplete, 1u);
  EXPECT_NEAR(census.valley_fraction(), 0.5, 1e-9);
}

TEST(ValleyCensus, NecessityDetection) {
  // Two hierarchies joined ONLY by the leak link 2-5 (p2p):
  //   1 -p2c-> 2,   4 -p2c-> 5;  path 2..5 crossing after a descent is a
  //   valley, and there is no valley-free alternative: necessary.
  RelationshipMap rels;
  rels.set(1, 2, Relationship::P2C);
  rels.set(4, 5, Relationship::P2C);
  rels.set(2, 5, Relationship::P2P);

  // 1 -> 2 -> 5 -> 4?  rel(5,4)=c2p: climb after peer: valley.
  PathStore paths;
  paths.add({1, 2, 5, 4});

  const auto census = census_valleys(paths, rels);
  ASSERT_EQ(census.valley, 1u);
  EXPECT_EQ(census.classified_valleys, 1u);
  EXPECT_EQ(census.necessary_valleys, 1u);
  EXPECT_TRUE(valley_is_necessary(1, 4, rels));
  EXPECT_FALSE(valley_is_necessary(1, 2, rels));
}

TEST(ValleyCensus, UnnecessaryValleyDetected) {
  // Stub 3 reaches 7 across two peering links (2-5, 5-7): a valley.  But a
  // common provider 9 offers a valley-free detour (3 up 2 up 9 down 7), so
  // the valley is gratuitous, not reachability-required.
  RelationshipMap rels;
  rels.set(2, 3, Relationship::P2C);
  rels.set(2, 5, Relationship::P2P);
  rels.set(5, 7, Relationship::P2P);
  rels.set(9, 2, Relationship::P2C);
  rels.set(9, 7, Relationship::P2C);

  PathStore paths;
  paths.add({3, 2, 5, 7});

  const auto census = census_valleys(paths, rels);
  ASSERT_EQ(census.valley, 1u);
  EXPECT_EQ(census.classified_valleys, 1u);
  EXPECT_EQ(census.necessary_valleys, 0u);
  EXPECT_NEAR(census.necessary_fraction(), 0.0, 1e-9);
  EXPECT_FALSE(valley_is_necessary(3, 7, rels));
}

TEST(ValleyCensus, ValleysWithUnknownGapsAreNotClassified) {
  RelationshipMap rels;
  rels.set(1, 2, Relationship::P2C);
  rels.set(2, 3, Relationship::C2P);  // definite valley at 1-2-3
  // 3-4 left unknown.
  PathStore paths;
  paths.add({1, 2, 3, 4});
  const auto census = census_valleys(paths, rels);
  EXPECT_EQ(census.valley, 1u);
  EXPECT_EQ(census.classified_valleys, 0u);
}

TEST(ValleyCensus, EmptyStore) {
  const auto census = census_valleys(PathStore{}, RelationshipMap{});
  EXPECT_EQ(census.paths, 0u);
  EXPECT_EQ(census.valley_fraction(), 0.0);
  EXPECT_EQ(census.necessary_fraction(), 0.0);
}

// Property over generated Internets: the IPv4 plane (no relaxation there)
// must contain no valley paths at all under ground-truth relationships.
class V4ValleyFree : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(V4ValleyFree, GroundTruthV4HasNoValleys) {
  const auto net = gen::SyntheticInternet::generate(gen::small_params(GetParam()));
  const auto rib = net.collect();
  PathStore v4;
  for (const auto& route : rib.routes()) {
    if (route.af == IpVersion::V4) v4.add(route.as_path);
  }
  const auto census = census_valleys(v4, net.truth(IpVersion::V4));
  EXPECT_EQ(census.valley, 0u);
  EXPECT_EQ(census.incomplete, 0u);  // ground truth covers every link
  EXPECT_GT(census.paths, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, V4ValleyFree, ::testing::Values(1, 2, 3, 4));

// And the IPv6 plane must contain SOME valleys (relaxation is on), all of
// which are genuine policy violations under ground truth.
TEST(ValleyCensusGen, V6HasValleysUnderGroundTruth) {
  const auto net = gen::SyntheticInternet::generate(gen::small_params(7));
  const auto rib = net.collect();
  PathStore v6;
  for (const auto& route : rib.routes()) {
    if (route.af == IpVersion::V6) v6.add(route.as_path);
  }
  const auto census = census_valleys(v6, net.truth(IpVersion::V6));
  EXPECT_GT(census.valley, 0u);
  EXPECT_GT(census.paths, census.valley);  // not everything is a valley
}

}  // namespace
}  // namespace htor::core
