#include "util/json.hpp"

namespace htor {

std::string JsonWriter::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\f': out += "\\f"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xf]);
          out.push_back(hex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::begin_value(const char* what) {
  if (done_) throw InvalidArgument(std::string("JsonWriter: ") + what + " after the root value");
  if (!stack_.empty() && stack_.back() == Frame::Object && !after_key_) {
    throw InvalidArgument(std::string("JsonWriter: ") + what + " in an object without a key");
  }
  if (need_comma_ && !after_key_) out_.push_back(',');
  after_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  begin_value("begin_object");
  out_.push_back('{');
  stack_.push_back(Frame::Object);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::Object || after_key_) {
    throw InvalidArgument("JsonWriter: end_object without a matching open object");
  }
  out_.push_back('}');
  stack_.pop_back();
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value("begin_array");
  out_.push_back('[');
  stack_.push_back(Frame::Array);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::Array) {
    throw InvalidArgument("JsonWriter: end_array without a matching open array");
  }
  out_.push_back(']');
  stack_.pop_back();
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (done_ || stack_.empty() || stack_.back() != Frame::Object || after_key_) {
    throw InvalidArgument("JsonWriter: key() is only valid directly inside an object");
  }
  if (need_comma_) out_.push_back(',');
  out_ += quote(k);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  begin_value("value");
  out_ += quote(v);
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  begin_value("value");
  out_ += std::to_string(v);
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  begin_value("value");
  out_ += v ? "true" : "false";
  need_comma_ = true;
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!done_ || !stack_.empty()) {
    throw InvalidArgument("JsonWriter: str() before the document is complete");
  }
  return out_;
}

}  // namespace htor
