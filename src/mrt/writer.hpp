// MRT serializer.  Produces byte-exact RFC 6396 records/files; what the
// synthetic collector uses to emit RouteViews-style RIB snapshots.
#pragma once

#include <string>
#include <vector>

#include "mrt/record.hpp"
#include "util/bytes.hpp"

namespace htor::mrt {

/// Serialize a single record (common header + body).
std::vector<std::uint8_t> encode_record(const Record& record);

/// Accumulates records into an in-memory MRT "file".
class MrtWriter {
 public:
  void write(const Record& record);

  const std::vector<std::uint8_t>& data() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }
  std::size_t records_written() const { return count_; }

  /// Flush the accumulated bytes to a file.  Throws Error on I/O failure.
  void save(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t count_ = 0;
};

}  // namespace htor::mrt
