#include "bgp/as_path.hpp"

#include <unordered_set>

namespace htor::bgp {

AsPath AsPath::sequence(std::vector<Asn> asns) {
  AsPath p;
  if (!asns.empty()) {
    p.segments_.push_back(AsPathSegment{AsSegmentType::Sequence, std::move(asns)});
  }
  return p;
}

void AsPath::prepend(Asn asn, std::size_t count) {
  if (count == 0) return;
  if (segments_.empty() || segments_.front().type != AsSegmentType::Sequence) {
    segments_.insert(segments_.begin(), AsPathSegment{AsSegmentType::Sequence, {}});
  }
  auto& front = segments_.front().asns;
  front.insert(front.begin(), count, asn);
}

std::vector<Asn> AsPath::flatten() const {
  std::vector<Asn> out;
  for (const auto& seg : segments_) {
    out.insert(out.end(), seg.asns.begin(), seg.asns.end());
  }
  return out;
}

std::size_t AsPath::decision_length() const {
  std::size_t len = 0;
  for (const auto& seg : segments_) {
    len += seg.type == AsSegmentType::Set ? 1 : seg.asns.size();
  }
  return len;
}

Asn AsPath::first() const {
  for (const auto& seg : segments_) {
    if (!seg.asns.empty()) return seg.asns.front();
  }
  return 0;
}

Asn AsPath::origin() const {
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (!it->asns.empty()) return it->asns.back();
  }
  return 0;
}

bool AsPath::has_loop() const {
  const auto deduped = flatten_deduped();
  std::unordered_set<Asn> seen;
  for (Asn a : deduped) {
    if (!seen.insert(a).second) return true;
  }
  return false;
}

bool AsPath::contains(Asn asn) const {
  for (const auto& seg : segments_) {
    for (Asn a : seg.asns) {
      if (a == asn) return true;
    }
  }
  return false;
}

std::vector<Asn> AsPath::flatten_deduped() const {
  std::vector<Asn> out;
  for (Asn a : flatten()) {
    if (out.empty() || out.back() != a) out.push_back(a);
  }
  return out;
}

std::string AsPath::to_string() const {
  std::string out;
  for (const auto& seg : segments_) {
    if (!out.empty()) out += ' ';
    if (seg.type == AsSegmentType::Set) {
      out += '{';
      for (std::size_t i = 0; i < seg.asns.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(seg.asns[i]);
      }
      out += '}';
    } else {
      for (std::size_t i = 0; i < seg.asns.size(); ++i) {
        if (i) out += ' ';
        out += std::to_string(seg.asns[i]);
      }
    }
  }
  return out;
}

}  // namespace htor::bgp
