// Console table printer used by the bench binaries to emit the paper's
// tables/figure series as aligned rows (and optionally CSV).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace htor {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have as many cells as there are headers.
  void row(std::vector<std::string> cells);

  /// Render with aligned columns to `os`.
  void print(std::ostream& os) const;

  /// Render as CSV (no alignment padding).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace htor
