// Shared-ownership wrapper around one validated v2 snapshot image.
//
// A MappedSnapshot owns its bytes through one of two backings:
//
//   from_bytes(vector)  an owned in-memory image — what the query daemon
//                       loads, because its snapshot file can be rewritten
//                       *in place* underneath it (the torn-file stress
//                       tests do exactly that) and a live mmap of a
//                       truncated inode dies with SIGBUS instead of a
//                       catchable error;
//   map_file(path)      a read-only mmap — zero-copy for short-lived CLI
//                       lookups, where the kernel pages in only what the
//                       binary search touches.  The mapping pins the
//                       original inode, so a rename()-replaced file keeps
//                       serving its old bytes to existing views.
//
// Either way the image is fully validated (layout.hpp) before the shared
// pointer escapes, and QueryIndex views hold the shared_ptr — the image
// unmaps/frees exactly when the last view drops, which is what lets a view
// outlive a daemon hot-reload swap.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "snapshot/layout.hpp"
#include "util/mmap_file.hpp"

namespace htor::snapshot {

class MappedSnapshot {
 public:
  /// Validate `bytes` as a v2 image and take ownership.  Throws DecodeError
  /// when the image is malformed; nothing escapes on failure.
  static std::shared_ptr<const MappedSnapshot> from_bytes(std::vector<std::uint8_t> bytes);

  /// Map `path` read-only and validate it as a v2 image.  Throws Error when
  /// the file cannot be mapped, DecodeError when its contents are invalid.
  static std::shared_ptr<const MappedSnapshot> map_file(const std::string& path);

  /// Adopt an existing mapping and validate it as a v2 image.
  static std::shared_ptr<const MappedSnapshot> from_map(MmapFile map);

  /// The validated view; valid while this object lives.
  const V2View& view() const { return view_; }

  /// Size of the v2 image in bytes.
  std::uint64_t byte_size() const { return view_.bytes.size(); }

  /// True when the backing is an mmap rather than owned memory.
  bool is_mapped() const { return map_.mapped(); }

 private:
  MappedSnapshot() = default;

  MmapFile map_;
  std::vector<std::uint8_t> owned_;
  V2View view_;
};

}  // namespace htor::snapshot
