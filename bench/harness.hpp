// Shared experiment harness for the bench binaries.
//
// Every bench regenerates the default synthetic Internet from its seed, runs
// the *full* pipeline a real study would run — propagate, serialize the
// collector RIB to MRT bytes, parse the bytes back, mine the IRR text, infer
// — and reports paper-vs-measured rows.  Nothing is cached across benches so
// each binary is independently reproducible.
#pragma once

#include <memory>
#include <string>

#include "core/census_report.hpp"
#include "gen/internet.hpp"
#include "mrt/rib_view.hpp"
#include "rpsl/community_dict.hpp"

namespace htor::bench {

struct Dataset {
  gen::SyntheticInternet net;
  mrt::ObservedRib rib;               ///< parsed back from MRT bytes
  rpsl::CommunityDictionary dict;     ///< mined from the IRR text
  std::size_t mrt_bytes = 0;          ///< size of the serialized RIB dumps
  std::size_t mrt_records = 0;
};

/// Build the default dataset (seed 42 unless overridden).
Dataset make_dataset(std::uint64_t seed = 42);

/// Build a dataset from explicit params.
Dataset make_dataset(const gen::GenParams& params);

/// Print a standard bench header.
void print_header(const std::string& experiment_id, const std::string& claim);

}  // namespace htor::bench
