// Tier classification of ASes from a relationship map.
//
// The paper observes that hybrid links concentrate "among tier-1 or tier-2
// ASes with large numbers of connections"; this module provides the tiering
// used to verify that observation on the synthetic topology.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "netbase/asn.hpp"
#include "topology/relationship.hpp"

namespace htor {

enum class Tier : std::uint8_t { Tier1, Tier2, Tier3, Stub };

const char* to_string(Tier tier);

struct TierParams {
  /// Minimum customer-cone size of a provider-free AS to count as tier-1.
  std::size_t tier1_min_cone = 50;
  /// Minimum customer-cone size for tier-2.
  std::size_t tier2_min_cone = 5;
};

/// Classify every AS that appears in `rels`:
///  - Tier1: no providers and a large customer cone,
///  - Stub:  no customers,
///  - Tier2: cone >= tier2_min_cone,
///  - Tier3: everything else (small transit).
std::unordered_map<Asn, Tier> classify_tiers(const RelationshipMap& rels,
                                             const TierParams& params = {});

}  // namespace htor
