// Fixed-size worker pool for the census hot paths.
//
// The pool is sized by a *job count*: 0 asks for one worker per hardware
// thread, 1 means "run everything inline on the calling thread" (no worker
// threads are spawned at all, so single-job runs stay exactly as
// deterministic and debuggable as the original sequential code), and N > 1
// spawns N workers.  Tasks are submitted as futures; exceptions thrown by a
// task surface at future.get() on the caller's thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace htor {

class ThreadPool {
 public:
  /// `jobs` as described above: 0 = hardware threads, 1 = inline, N = N.
  explicit ThreadPool(std::size_t jobs = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count; 0 when the pool executes inline.
  std::size_t workers() const { return workers_.size(); }

  /// Effective parallelism (1 when inline).
  std::size_t concurrency() const { return workers_.empty() ? 1 : workers_.size(); }

  /// Best guess at the machine's thread count (never 0).
  static std::size_t hardware_threads();

  /// Tasks currently waiting in the queue (not the ones being executed).
  /// A point-in-time reading for telemetry — with live producers the value
  /// is stale the moment it returns; after every submitted future has been
  /// waited, it is exactly 0.
  std::size_t queued() const;

  /// Tasks run over the pool's lifetime, inline ones included.  The count
  /// is bumped as a task *starts*, sequenced before its future is
  /// fulfilled: once every submitted future has been waited, executed()
  /// deterministically equals the submission count (and queued() is 0, so
  /// the pool is provably drained — the observability gauges expose both).
  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Schedule `fn` and return its future.  With no workers the task runs
  /// immediately on the calling thread; the future is already ready.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      executed_.fetch_add(1, std::memory_order_relaxed);
      (*task)();
    } else {
      post([task] { (*task)(); });
    }
    return future;
  }

 private:
  void post(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;  // mutable: queued() is a const observer
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> executed_{0};
};

}  // namespace htor
