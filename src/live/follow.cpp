#include "live/follow.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "rpsl/object.hpp"
#include "snapshot/query.hpp"
#include "util/error.hpp"

namespace htor::live {

namespace {

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) throw Error("read from '" + path + "' failed");
  return out.str();
}

rpsl::CommunityDictionary load_dictionary(const std::string& irr_path) {
  return rpsl::mine_dictionary(rpsl::parse_objects(read_text_file(irr_path)));
}

IncrementalCensus build_census(const std::string& rib_path, ThreadPool& pool,
                               const rpsl::CommunityDictionary& dict,
                               const core::InferenceConfig& inference) {
  return IncrementalCensus(core::load_rib(rib_path, pool), dict, inference, rib_path);
}

}  // namespace

FollowService::FollowService(const std::string& rib_path, const std::string& irr_path,
                             std::vector<std::string> update_paths, FollowConfig config)
    : update_paths_(std::move(update_paths)),
      config_(config),
      census_pool_(config.jobs),
      dict_(load_dictionary(irr_path)),
      census_(build_census(rib_path, census_pool_, dict_, config.inference)),
      // Epoch 0 is the seed RIB's census: the daemon is never up without a
      // servable index, exactly like the snapshot-file constructor.
      daemon_(snapshot::QueryIndex(census_.recompute(census_pool_).snap), config.daemon),
      pipeline_(census_, config.pipeline),
      epoch_age_metric_(obs::MetricsRegistry::global().callback(
          "htor_live_epoch_age_seconds", {}, obs::MetricsRegistry::Kind::Gauge, [this] {
            std::lock_guard<std::mutex> lock(mutex_);
            return static_cast<std::int64_t>(std::chrono::duration_cast<std::chrono::seconds>(
                                                 std::chrono::steady_clock::now() - last_publish_)
                                                 .count());
          })) {}

FollowService::~FollowService() { stop(); }

void FollowService::start() {
  if (started_) return;
  daemon_.start();
  started_ = true;
  // lint: allow(naked-thread) dedicated pipeline driver; joined in stop()
  // and wait() before any member it touches is destroyed
  runner_ = std::thread([this] { run_pipeline(); });
}

void FollowService::run_pipeline() {
  try {
    PipelineResult result = pipeline_.run(update_paths_, census_pool_, [this](const EpochReport& epoch) {
      // Build the index outside any daemon lock, then swap: the publish
      // cost the daemon's readers see is one pointer assignment.
      snapshot::QueryIndex index(epoch.snap);
      daemon_.swap_index(std::move(index));
      std::lock_guard<std::mutex> lock(mutex_);
      ++epochs_published_;
      last_publish_ = std::chrono::steady_clock::now();
    });
    std::lock_guard<std::mutex> lock(mutex_);
    result_ = result;
    finished_ = true;
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    pipeline_error_ = std::current_exception();
    finished_ = true;
  }
}

void FollowService::wait() {
  if (runner_.joinable()) runner_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  if (pipeline_error_ != nullptr) {
    std::exception_ptr error = std::exchange(pipeline_error_, nullptr);
    std::rethrow_exception(error);
  }
}

void FollowService::stop() {
  pipeline_.request_stop();
  if (runner_.joinable()) runner_.join();
  if (started_) daemon_.stop();
}

std::uint64_t FollowService::epochs_published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epochs_published_;
}

PipelineResult FollowService::result() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return result_;
}

}  // namespace htor::live
