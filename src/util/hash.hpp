// Deterministic stateless hashing for the generator.
//
// Some per-(AS, origin) decisions (TE overrides, geo tags) must be
// reproducible at route-extraction time without replaying a sequential RNG;
// they are derived from splitmix64 of the participating identifiers instead.
//
// The primitives themselves live in obs/sketch/hash.hpp — the one file
// allowed to carry raw mixing constants (tools/lint.py `raw-hash`).  This
// header just re-exports them under the historical `htor::` names.
#pragma once

#include "obs/sketch/hash.hpp"

namespace htor {

using obs::sketch::hash_mix;
using obs::sketch::hash_unit;
using obs::sketch::splitmix64;

}  // namespace htor
