// Unit and property tests for Prefix and PrefixTrie (longest-prefix match
// cross-checked against a brute-force oracle).
#include <gtest/gtest.h>

#include <optional>

#include "netbase/prefix.hpp"
#include "netbase/trie.hpp"
#include "util/rng.hpp"

namespace htor {
namespace {

TEST(Prefix, ParseAndCanonicalize) {
  const auto p = Prefix::parse("192.0.2.129/25");
  EXPECT_EQ(p.to_string(), "192.0.2.128/25");  // host bits cleared
  EXPECT_EQ(p.length(), 25);
  const auto p6 = Prefix::parse("2001:db8:1234:ffff::/48");
  EXPECT_EQ(p6.to_string(), "2001:db8:1234::/48");
}

TEST(Prefix, ParseErrors) {
  Prefix out;
  EXPECT_FALSE(Prefix::try_parse("192.0.2.0", out));      // no length
  EXPECT_FALSE(Prefix::try_parse("192.0.2.0/33", out));   // too long
  EXPECT_FALSE(Prefix::try_parse("2001:db8::/129", out));
  EXPECT_FALSE(Prefix::try_parse("x/8", out));
  EXPECT_THROW(Prefix::parse("192.0.2.0/"), ParseError);
}

TEST(Prefix, ContainsAddress) {
  const auto p = Prefix::parse("10.1.0.0/16");
  EXPECT_TRUE(p.contains(IpAddress::parse("10.1.2.3")));
  EXPECT_FALSE(p.contains(IpAddress::parse("10.2.0.0")));
  EXPECT_FALSE(p.contains(IpAddress::parse("2001:db8::1")));  // family mismatch
}

TEST(Prefix, ContainsPrefix) {
  const auto p = Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(Prefix::parse("10.1.0.0/16")));
  EXPECT_TRUE(p.contains(p));
  EXPECT_FALSE(p.contains(Prefix::parse("0.0.0.0/0")));  // less specific
  EXPECT_FALSE(p.contains(Prefix::parse("11.0.0.0/16")));
}

TEST(Prefix, DefaultRouteContainsEverything) {
  const Prefix def;  // 0.0.0.0/0
  EXPECT_TRUE(def.contains(IpAddress::parse("255.255.255.255")));
  EXPECT_TRUE(def.contains(Prefix::parse("192.0.2.0/24")));
}

TEST(PrefixTrie, ExactMatch) {
  PrefixTrie<int> trie(IpVersion::V4);
  EXPECT_TRUE(trie.assign(Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_TRUE(trie.assign(Prefix::parse("10.1.0.0/16"), 2));
  EXPECT_FALSE(trie.assign(Prefix::parse("10.0.0.0/8"), 3));  // overwrite
  EXPECT_EQ(trie.size(), 2u);
  ASSERT_NE(trie.find(Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(Prefix::parse("10.0.0.0/8")), 3);
  EXPECT_EQ(trie.find(Prefix::parse("10.0.0.0/9")), nullptr);
}

TEST(PrefixTrie, LongestMatch) {
  PrefixTrie<int> trie(IpVersion::V4);
  trie.assign(Prefix::parse("0.0.0.0/0"), 0);
  trie.assign(Prefix::parse("10.0.0.0/8"), 8);
  trie.assign(Prefix::parse("10.1.0.0/16"), 16);
  auto m = trie.longest_match(IpAddress::parse("10.1.2.3"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->to_string(), "10.1.0.0/16");
  EXPECT_EQ(*trie.longest_match_value(IpAddress::parse("10.1.2.3")), 16);
  EXPECT_EQ(*trie.longest_match_value(IpAddress::parse("10.200.0.1")), 8);
  EXPECT_EQ(*trie.longest_match_value(IpAddress::parse("192.0.2.1")), 0);
}

TEST(PrefixTrie, MissWithoutDefault) {
  PrefixTrie<int> trie(IpVersion::V6);
  trie.assign(Prefix::parse("2001:db8::/32"), 1);
  EXPECT_FALSE(trie.longest_match(IpAddress::parse("2002::1")).has_value());
  EXPECT_EQ(trie.longest_match_value(IpAddress::parse("2002::1")), nullptr);
}

TEST(PrefixTrie, FamilyMismatchThrows) {
  PrefixTrie<int> trie(IpVersion::V4);
  EXPECT_THROW(trie.assign(Prefix::parse("2001:db8::/32"), 1), InvalidArgument);
  EXPECT_THROW(trie.longest_match(IpAddress::parse("::1")), InvalidArgument);
}

TEST(PrefixTrie, ForEachVisitsAll) {
  PrefixTrie<int> trie(IpVersion::V4);
  trie.assign(Prefix::parse("10.0.0.0/8"), 1);
  trie.assign(Prefix::parse("192.0.2.0/24"), 2);
  trie.assign(Prefix::parse("0.0.0.0/0"), 3);
  int count = 0;
  int sum = 0;
  trie.for_each([&](const Prefix&, int v) {
    ++count;
    sum += v;
  });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sum, 6);
}

// Property: trie longest-match agrees with a brute-force scan over random
// prefix sets, for both families.
class TrieVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieVsBruteForce, Agrees) {
  Rng rng(GetParam());
  const IpVersion ver = GetParam() % 2 == 0 ? IpVersion::V4 : IpVersion::V6;
  PrefixTrie<std::size_t> trie(ver);
  std::vector<Prefix> prefixes;

  auto random_address = [&]() {
    std::array<std::uint8_t, 16> raw{};
    for (auto& b : raw) b = static_cast<std::uint8_t>(rng.uniform(0, 3) * 85);
    return ver == IpVersion::V4
               ? IpAddress(IpVersion::V4, std::span<const std::uint8_t>(raw.data(), 4))
               : IpAddress(IpVersion::V6, raw);
  };

  for (int i = 0; i < 120; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform(0, address_bits(ver)));
    const Prefix p(random_address(), len);
    trie.assign(p, prefixes.size());
    prefixes.push_back(p);
  }

  for (int i = 0; i < 300; ++i) {
    const IpAddress probe = random_address();
    std::optional<Prefix> best;
    for (const auto& p : prefixes) {
      if (p.contains(probe) && (!best || p.length() > best->length())) best = p;
    }
    const auto got = trie.longest_match(probe);
    ASSERT_EQ(got.has_value(), best.has_value());
    if (best) {
      EXPECT_EQ(got->length(), best->length());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieVsBruteForce, ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace htor
