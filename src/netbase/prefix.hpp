// IP prefixes (CIDR blocks) for both families.
//
// A Prefix is stored canonically: all bits beyond the prefix length are zero,
// which makes equality and hashing trivially correct.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "netbase/ip.hpp"

namespace htor {

class Prefix {
 public:
  /// 0.0.0.0/0.
  Prefix() : addr_(), len_(0) {}

  /// Canonicalizes: host bits of `addr` beyond `len` are cleared.
  /// Throws InvalidArgument when `len` exceeds the family's bit width.
  Prefix(const IpAddress& addr, std::uint8_t len);

  /// Parse "192.0.2.0/24" or "2001:db8::/32".  Throws ParseError.
  static Prefix parse(std::string_view text);
  static bool try_parse(std::string_view text, Prefix& out);

  const IpAddress& address() const { return addr_; }
  std::uint8_t length() const { return len_; }
  IpVersion version() const { return addr_.version(); }

  /// True when `addr` (same family) falls inside this prefix.
  bool contains(const IpAddress& addr) const;

  /// True when `other` (same family) is equal to or more specific than this.
  bool contains(const Prefix& other) const;

  std::string to_string() const;

  friend bool operator==(const Prefix& a, const Prefix& b) {
    return a.len_ == b.len_ && a.addr_ == b.addr_;
  }
  friend std::strong_ordering operator<=>(const Prefix& a, const Prefix& b) {
    if (auto c = a.addr_ <=> b.addr_; c != std::strong_ordering::equal) return c;
    return a.len_ <=> b.len_;
  }

 private:
  IpAddress addr_;
  std::uint8_t len_;
};

/// FNV-1a over the canonical bytes; suitable for unordered_map keys.
/// Process-local only — never feeds a mergeable sketch (those hash through
/// obs/sketch/hash.hpp), so the inline constants are fine here.
struct PrefixHash {
  std::size_t operator()(const Prefix& p) const {
    // lint: allow(raw-hash) unordered_map functor, not sketch input
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint8_t b) {
      h ^= b;
      h *= 1099511628211ull;  // lint: allow(raw-hash) FNV prime of the same functor
    };
    mix(static_cast<std::uint8_t>(p.version()));
    mix(p.length());
    for (std::uint8_t b : p.address().bytes()) mix(b);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace htor
