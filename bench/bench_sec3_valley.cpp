// T5 (§3 ¶4): valley paths.
// Paper: 13% of IPv6 paths violate the valley-free rule; 16% of those
// valleys exist to expand reachability (strict valley-free IPv6 routing is
// partitioned, cf. the AS6939/AS174 dispute).
#include <iostream>

#include "core/valley_census.hpp"
#include "harness.hpp"
#include "topology/reachability.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace htor;
  bench::print_header("T5 / bench_sec3_valley",
                      "13% of IPv6 paths are valley paths; 16% of valleys are "
                      "reachability-required; v6 partitioned under valley-free");

  const auto ds = bench::make_dataset();
  const auto census = core::run_census(ds.rib, ds.dict);

  Table t({"metric", "paper", "measured"});
  const auto& v6 = census.v6_valleys;
  t.row({"IPv6 valley paths", "13%",
         std::to_string(v6.valley) + " / " + std::to_string(v6.paths) + " (" +
             fmt_pct(v6.valley, v6.paths) + ")"});
  t.row({"reachability-required valleys", "16%",
         std::to_string(v6.necessary_valleys) + " / " + std::to_string(v6.classified_valleys) +
             " (" + fmt_pct(v6.necessary_valleys, v6.classified_valleys) + ")"});
  t.row({"paths with incomplete rel knowledge", "-",
         std::to_string(v6.incomplete) + " (" + fmt_pct(v6.incomplete, v6.paths) + ")"});
  const auto& v4 = census.v4_valleys;
  t.row({"IPv4 valley paths (contrast)", "(small)",
         std::to_string(v4.valley) + " / " + std::to_string(v4.paths) + " (" +
             fmt_pct(v4.valley, v4.paths) + ")"});
  t.print(std::cout);

  // Partition evidence on ground truth: valley-free reachability between the
  // exclusive cones of the disputing tier-1s.
  const auto [a, b] = ds.net.dispute_pair();
  if (a != 0) {
    ValleyFreeRouting vf(ds.net.graph(), ds.net.truth(IpVersion::V6), IpVersion::V6);
    std::cout << "\nIPv6 tier-1 dispute: AS" << a << " and AS" << b
              << " do not peer in IPv6 (ground truth)\n";
    std::cout << "strict valley-free reachability AS" << a << " -> AS" << b << ": "
              << (vf.reachable(a, b) ? "reachable" : "UNREACHABLE (partitioned)") << "\n";
  }
  return 0;
}
