#include "baselines/gao.hpp"

#include <unordered_map>
#include <unordered_set>

namespace htor::baselines {

namespace {

/// Ordered-pair transit votes: key (u, v) counts "u is provider of v".
struct PairHash {
  std::size_t operator()(const std::pair<Asn, Asn>& p) const {
    return std::hash<std::uint64_t>()(static_cast<std::uint64_t>(p.first) << 32 | p.second);
  }
};

}  // namespace

GaoResult infer_gao(const PathStore& paths, const GaoParams& params) {
  // Phase 1: degrees from the observed paths.
  std::unordered_map<Asn, std::unordered_set<Asn>> neighbors;
  paths.for_each([&](const std::vector<Asn>& path, std::uint64_t) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i] == path[i + 1]) continue;
      neighbors[path[i]].insert(path[i + 1]);
      neighbors[path[i + 1]].insert(path[i]);
    }
  });
  auto degree = [&neighbors](Asn asn) -> std::size_t {
    auto it = neighbors.find(asn);
    return it == neighbors.end() ? 0 : it->second.size();
  };

  // Phase 2: transit votes.  Each path's peak (highest-degree AS) splits it
  // into a climbing part and a descending part.  The link between the peak
  // and its higher-degree neighbor is the path's *potential peering link*
  // (Gao's refined algorithm) and casts no transit vote — otherwise every
  // peering link would be stamped transit by the paths that cross it.
  std::unordered_map<std::pair<Asn, Asn>, std::uint64_t, PairHash> transit;
  paths.for_each([&](const std::vector<Asn>& raw, std::uint64_t) {
    std::vector<Asn> path;
    for (Asn a : raw) {
      if (path.empty() || path.back() != a) path.push_back(a);
    }
    if (path.size() < 2) return;
    std::size_t peak = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (degree(path[i]) > degree(path[peak])) peak = i;
    }
    // Potential peering link: between the peak and whichever neighbor has
    // the higher degree (it is the plausible second "top" of the path).
    std::size_t peer_candidate;  // index i of link (p[i], p[i+1])
    if (peak == 0) {
      peer_candidate = 0;
    } else if (peak + 1 == path.size()) {
      peer_candidate = peak - 1;
    } else {
      peer_candidate =
          degree(path[peak - 1]) >= degree(path[peak + 1]) ? peak - 1 : peak;
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (i == peer_candidate) continue;
      if (i < peak) {
        ++transit[{path[i + 1], path[i]}];  // climbing: p[i+1] provides for p[i]
      } else {
        ++transit[{path[i], path[i + 1]}];  // descending
      }
    }
  });

  // Phase 3: assign transit / sibling from the votes.
  GaoResult result;
  std::unordered_set<LinkKey, LinkKeyHash> voted;
  for (const auto& [pair, votes] : transit) {
    const LinkKey key(pair.first, pair.second);
    if (!voted.insert(key).second) continue;
    auto fwd = transit.find({key.first, key.second});
    auto rev = transit.find({key.second, key.first});
    const std::uint64_t f = fwd == transit.end() ? 0 : fwd->second;
    const std::uint64_t r = rev == transit.end() ? 0 : rev->second;
    if (f > 0 && r > 0 &&
        static_cast<double>(std::min(f, r)) >=
            params.sibling_ratio * static_cast<double>(std::max(f, r))) {
      result.rels.set(key.first, key.second, Relationship::S2S);
      ++result.sibling_links;
    } else if (f >= r) {
      result.rels.set(key.first, key.second, Relationship::P2C);
      ++result.transit_links;
    } else {
      result.rels.set(key.first, key.second, Relationship::C2P);
      ++result.transit_links;
    }
  }

  // Phase 4: links that never drew a transit vote sit at path peaks; peers
  // when the endpoint degrees are comparable, otherwise the bigger side is
  // assumed the provider.
  for (const LinkKey& key : paths.links()) {
    if (result.rels.contains(key)) continue;
    const double da = static_cast<double>(degree(key.first));
    const double db = static_cast<double>(degree(key.second));
    const double ratio = (da < 1 || db < 1) ? params.peer_degree_ratio + 1
                                            : std::max(da, db) / std::min(da, db);
    if (ratio <= params.peer_degree_ratio) {
      result.rels.set(key.first, key.second, Relationship::P2P);
      ++result.peer_links;
    } else if (da >= db) {
      result.rels.set(key.first, key.second, Relationship::P2C);
      ++result.transit_links;
    } else {
      result.rels.set(key.first, key.second, Relationship::C2P);
      ++result.transit_links;
    }
  }
  return result;
}

}  // namespace htor::baselines
