#!/usr/bin/env python3
"""Decoder-discipline lint for the hybridtor tree.

The hand-rolled decoders (MRT, snapshot, HTTP) and the thread pool rest on a
small set of invariants that generic tooling cannot check.  This linter
enforces them over ``src/`` and ``tools/``:

  raw-cast          ``reinterpret_cast`` is only allowed inside util/bytes —
                    everywhere else, bytes from an input buffer must go
                    through the bounds-checked ByteReader accessors.
  raw-memcpy        ``memcpy``/``memmove`` outside util/bytes: same rationale;
                    a size that did not pass a bounds check must not drive a
                    raw copy.
  wire-count-alloc  An allocation (``reserve``/``resize``/vector-size ctor)
                    sized directly by a ByteReader integer read (``r.u16()``
                    etc.) on the same statement.  Counts from the wire must
                    land in a named variable and be bounded against
                    ``remaining()`` *before* any allocation (see
                    snapshot/reader.cpp's decode_count for the idiom).
  unchecked-stoi    ``std::stoi``/``atoi``/``strtol``/``sscanf`` family:
                    these accept leading junk, ignore trailing junk, or have
                    UB on overflow.  Use util/strings' parse_u64/parse_asn.
  naked-thread      ``std::thread`` outside util/thread_pool: ad-hoc threads
                    bypass the pool's shutdown ordering and shard
                    determinism.  (``std::this_thread`` is fine.)
  raw-mmap          ``mmap``/``munmap``/``madvise`` (and friends) outside
                    util/mmap_file and snapshot/layout*: mappings must go
                    through the RAII MmapFile wrapper so lifetime and unmap
                    ordering stay in one place, and raw views over mapped
                    bytes stay confined to the v2 layout module where every
                    access is offset-validated first.
  adhoc-atomic-counter
                    a non-bool ``std::atomic<...>`` outside src/obs,
                    util/thread_pool, and util/spsc_ring (whose head/tail
                    indices are the lock-free protocol, not counters).
                    Telemetry counters belong in
                    obs::MetricsRegistry (sharded, named, scraped by both
                    metrics endpoints) — a raw atomic is invisible to
                    /metrics and regrows the pre-registry drift between
                    counted and reported values.  Atomic *flags*
                    (``std::atomic<bool>``) are lifecycle state, not
                    telemetry, and stay fine; a non-counter integral atomic
                    (e.g. a uniquifier that must survive registry resets)
                    documents itself with an allow comment.
  raw-hash          a well-known hash constant (the splitmix64 increment or
                    multipliers, the FNV-1a offset basis / prime in hex or
                    decimal) outside obs/sketch/hash.hpp.  Hand-rolled hash
                    functions silently fork the mixing the mergeable
                    sketches depend on — two sketches built with different
                    mixes merge without error and report garbage.  Hash an
                    item through obs::sketch's splitmix64/hash64 (or the
                    util/hash re-export) instead.
  pragma-once       every header starts its include guard with
                    ``#pragma once``.
  namespace         every file under src/ opens a ``namespace htor`` (or a
                    nested ``htor::x``) and closes it with the
                    ``}  // namespace`` trailer comment.

Silencing a finding
-------------------
A violation that is genuinely fine (e.g. the sockaddr casts the BSD socket
API forces on the daemon) is silenced with an allow comment carrying the
rule id and a non-empty reason, on the same line or the line above::

    // lint: allow(raw-cast) sockaddr_in -> sockaddr is the sockets ABI
    ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));

An allow comment with no reason is itself a finding (``allow-no-reason``),
so every suppression documents why it is safe.

Usage::

    tools/lint.py --root <repo root>     # lint the tree; exit 1 on findings
    tools/lint.py --self-test            # prove each rule catches a seeded
                                         # violation; exit 1 on any miss
"""

import argparse
import pathlib
import re
import sys
import tempfile

# Files where a rule does not apply: the one module allowed to do raw byte
# work, the one module allowed to own threads, and the two modules allowed
# to touch memory mappings (the RAII wrapper and the offset-validated v2
# layout views).
BYTES_HOME = re.compile(r"(^|/)src/util/bytes\.(hpp|cpp)$")
THREAD_HOME = re.compile(r"(^|/)src/util/thread_pool\.(hpp|cpp)$")
MMAP_HOME = re.compile(r"(^|/)src/(util/mmap_file|snapshot/layout[^/]*)\.(hpp|cpp)$")
# Where raw integral atomics are the implementation, not ad-hoc telemetry:
# the metrics registry's own cells, the thread pool's executed counter
# (exposed to the registry via a polled callback), and the SPSC ring, whose
# head/tail indices ARE the lock-free synchronization protocol — they could
# not live in the registry, and the ring's occupancy is scraped through the
# live pipeline's htor_live_ring_depth callback gauges instead.
OBS_HOME = re.compile(r"(^|/)src/(obs/[^/]+|util/thread_pool|util/spsc_ring)\.(hpp|cpp)$")
# The one home for the well-known hash constants: the sketch layer's mixing
# primitives.  Everything else takes splitmix64/hash64 from here (or the
# util/hash re-export) so every sketch in the process mixes identically.
HASH_HOME = re.compile(r"(^|/)src/obs/sketch/hash\.(hpp|cpp)$")

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([\w-]+)\)\s*(.*)$")
LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def strip_code(line):
    """Remove string literals and trailing // comments so rule regexes never
    fire on prose (error messages mentioning 'atoi', commented-out code)."""
    line = STRING_RE.sub('""', line)
    return LINE_COMMENT_RE.sub("", line)


# Per-line rules: (rule id, compiled regex over stripped code, message,
# predicate over the repo-relative posix path for "does this rule apply").
def _not_bytes_home(path):
    return not BYTES_HOME.search(path)


def _not_thread_home(path):
    return not THREAD_HOME.search(path)


def _not_mmap_home(path):
    return not MMAP_HOME.search(path)


def _not_obs_home(path):
    return not OBS_HOME.search(path)


def _not_hash_home(path):
    return not HASH_HOME.search(path)


LINE_RULES = [
    (
        "raw-cast",
        re.compile(r"\breinterpret_cast\s*<"),
        "reinterpret_cast outside util/bytes; decode through ByteReader "
        "or justify with an allow comment",
        _not_bytes_home,
    ),
    (
        "raw-memcpy",
        re.compile(r"\b(?:std::)?mem(?:cpy|move)\s*\("),
        "raw memcpy/memmove outside util/bytes; sizes must come from a "
        "bounds-checked reader",
        _not_bytes_home,
    ),
    (
        "wire-count-alloc",
        re.compile(
            r"(?:\.(?:reserve|resize)\s*\(|\bstd::vector\s*<[^;>]*>\s*\w*\s*\()"
            r"[^;)]*\b\w+\.u(?:8|16|32|64)\s*\(\s*\)"
        ),
        "allocation sized directly by a wire integer; name the count and "
        "bound it against remaining() first (see snapshot decode_count)",
        lambda path: True,
    ),
    (
        "unchecked-stoi",
        re.compile(
            r"\b(?:std::)?(?:stoi|stol|stoll|stoul|stoull|atoi|atol|atoll|"
            r"strtol|strtoll|strtoul|strtoull|sscanf)\s*\("
        ),
        "locale/overflow-unsafe numeric parse; use util/strings "
        "parse_u64/parse_asn",
        lambda path: True,
    ),
    (
        "naked-thread",
        re.compile(r"\bstd::thread\b(?!::)"),
        "std::thread outside util/thread_pool; submit work to the pool or "
        "justify with an allow comment",
        _not_thread_home,
    ),
    (
        "raw-mmap",
        re.compile(r"\b(?:mmap|munmap|mremap|madvise|mprotect)\s*\("),
        "raw memory-mapping call outside util/mmap_file and "
        "snapshot/layout*; go through the MmapFile RAII wrapper or justify "
        "with an allow comment",
        _not_mmap_home,
    ),
    (
        "raw-hash",
        # The splitmix64 increment/multipliers and the FNV-1a offset basis
        # and prime, in hex or decimal: the fingerprints of a hand-rolled
        # hash function.
        # Lookarounds rather than \b so integer suffixes (ull) still match
        # and longer literals that merely contain a constant do not.
        re.compile(
            r"0x9e3779b97f4a7c15|0xbf58476d1ce4e5b9|0x94d049bb133111eb|"
            r"0xcbf29ce484222325|0x100000001b3(?![0-9a-f])|"
            r"(?<![0-9a-z])1469598103934665603(?![0-9])|"
            r"(?<![0-9a-z])1099511628211(?![0-9])",
            re.IGNORECASE,
        ),
        "hand-rolled hash constant outside obs/sketch/hash.hpp; use "
        "obs::sketch splitmix64/hash64 so every sketch mixes identically, "
        "or justify with an allow comment",
        _not_hash_home,
    ),
    (
        "adhoc-atomic-counter",
        # Any std::atomic<...> whose argument is not bool: counters belong
        # in obs::MetricsRegistry, and the remaining legitimate uses (flag
        # enums, uniquifiers) are rare enough to carry an allow comment.
        re.compile(r"\bstd::atomic\s*<\s*(?!bool\s*>)"),
        "non-bool std::atomic outside src/obs and util/thread_pool; count "
        "through obs::MetricsRegistry so /metrics sees it, or justify with "
        "an allow comment",
        _not_obs_home,
    ),
]


def lint_file(path, rel, text):
    findings = []
    lines = text.splitlines()

    # Collect allow comments: rule id -> set of line numbers they cover.
    # An allow covers its own line, any continuation comment lines below it,
    # and the first code line after the comment block.
    allowed = {}
    for i, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if not reason:
            findings.append(
                Finding(rel, i, "allow-no-reason",
                        f"allow({rule}) without a reason; say why it is safe")
            )
        covered = {i}
        j = i + 1
        while j <= len(lines) and lines[j - 1].lstrip().startswith("//"):
            covered.add(j)
            j += 1
        covered.add(j)
        allowed.setdefault(rule, set()).update(covered)

    for i, line in enumerate(lines, start=1):
        code = strip_code(line)
        for rule, regex, message, applies in LINE_RULES:
            if not applies(rel):
                continue
            if not regex.search(code):
                continue
            if i in allowed.get(rule, ()):
                continue
            findings.append(Finding(rel, i, rule, message))

    in_src = rel.startswith("src/")
    if in_src and rel.endswith(".hpp") and "#pragma once" not in text:
        findings.append(Finding(rel, 1, "pragma-once", "header lacks #pragma once"))
    if in_src:
        if not re.search(r"\bnamespace\s+htor\b", text):
            findings.append(
                Finding(rel, 1, "namespace", "file does not open namespace htor")
            )
        elif not re.search(r"\}\s*//\s*namespace", text):
            findings.append(
                Finding(rel, len(lines), "namespace",
                        "closing brace lacks the }  // namespace trailer")
            )
    return findings


def lint_tree(root):
    root = pathlib.Path(root)
    findings = []
    paths = []
    for sub in ("src", "tools"):
        base = root / sub
        if base.is_dir():
            paths += sorted(base.rglob("*.hpp")) + sorted(base.rglob("*.cpp"))
    for path in paths:
        rel = path.relative_to(root).as_posix()
        findings += lint_file(path, rel, path.read_text(encoding="utf-8"))
    return findings


# ------------------------------------------------------------- self-test

# One seeded violation per rule, plus positives that must stay clean.  Each
# entry: (name, relative path, source text, set of rule ids that MUST fire).
SELF_TEST_CASES = [
    (
        "raw cast from an input buffer",
        "src/mrt/bad_cast.cpp",
        "#pragma once\nnamespace htor {\n"
        "const int* peek(const unsigned char* p) { return reinterpret_cast<const int*>(p); }\n"
        "}  // namespace htor\n",
        {"raw-cast"},
    ),
    (
        "unchecked memcpy",
        "src/mrt/bad_copy.cpp",
        "namespace htor {\n"
        "void copy(char* dst, const char* src, unsigned long n) { memcpy(dst, src, n); }\n"
        "}  // namespace htor\n",
        {"raw-memcpy"},
    ),
    (
        "allocation sized straight off the wire",
        "src/snapshot/bad_alloc.cpp",
        "namespace htor {\n"
        "void decode(ByteReader& r, std::vector<int>& v) { v.reserve(r.u64()); }\n"
        "}  // namespace htor\n",
        {"wire-count-alloc"},
    ),
    (
        "std::stoi on untrusted text",
        "src/rpsl/bad_parse.cpp",
        "namespace htor {\n"
        "int parse(const std::string& s) { return std::stoi(s); }\n"
        "}  // namespace htor\n",
        {"unchecked-stoi"},
    ),
    (
        "naked std::thread",
        "src/core/bad_thread.cpp",
        "namespace htor {\n"
        "void spawn() { std::thread t([] {}); t.join(); }\n"
        "}  // namespace htor\n",
        {"naked-thread"},
    ),
    (
        "mmap outside the wrapper",
        "src/server/bad_map.cpp",
        "namespace htor {\n"
        "void* map_it(unsigned long n, int fd) {\n"
        "  return mmap(nullptr, n, 1, 2, fd, 0);\n"
        "}\n"
        "}  // namespace htor\n",
        {"raw-mmap"},
    ),
    (
        "ad-hoc atomic counter outside the registry",
        "src/server/bad_counter.cpp",
        "namespace htor {\n"
        "struct S { std::atomic<std::uint64_t> requests_{0}; };\n"
        "}  // namespace htor\n",
        {"adhoc-atomic-counter"},
    ),
    (
        "hand-rolled hash outside the sketch home",
        "src/core/bad_hash.cpp",
        "namespace htor {\n"
        "std::uint64_t mix(std::uint64_t x) {\n"
        "  return (x + 0x9e3779b97f4a7c15ull) * 1099511628211ull;\n"
        "}\n"
        "}  // namespace htor\n",
        {"raw-hash"},
    ),
    (
        "header without pragma once",
        "src/util/bad_header.hpp",
        "namespace htor {\nint x();\n}  // namespace htor\n",
        {"pragma-once"},
    ),
    (
        "file outside namespace htor",
        "src/util/bad_namespace.cpp",
        "#pragma once\nint loose_function() { return 1; }\n",
        {"namespace"},
    ),
    (
        "allow comment without a reason",
        "src/server/bad_allow.cpp",
        "namespace htor {\n"
        "// lint: allow(raw-cast)\n"
        "void* p = reinterpret_cast<void*>(0);\n"
        "}  // namespace htor\n",
        {"allow-no-reason"},
    ),
    # Negatives: these must NOT fire.
    (
        "allow comment with a reason silences the finding",
        "src/server/good_allow.cpp",
        "namespace htor {\n"
        "// lint: allow(raw-cast) sockaddr_in -> sockaddr is the sockets ABI\n"
        "void use(const void* a) { (void)reinterpret_cast<const char*>(a); }\n"
        "}  // namespace htor\n",
        set(),
    ),
    (
        "rule words inside strings and comments stay quiet",
        "src/util/good_prose.cpp",
        "namespace htor {\n"
        'const char* kMsg = "never call atoi or memcpy here";\n'
        "// a comment may mention std::thread and reinterpret_cast freely\n"
        "}  // namespace htor\n",
        set(),
    ),
    (
        "mmap inside the RAII wrapper is its job",
        "src/util/mmap_file.cpp",
        "namespace htor {\n"
        "void* map_it(unsigned long n, int fd) {\n"
        "  return mmap(nullptr, n, 1, 2, fd, 0);\n"
        "}\n"
        "}  // namespace htor\n",
        set(),
    ),
    (
        "atomic flags are lifecycle state, not telemetry",
        "src/server/good_flag.cpp",
        "namespace htor {\n"
        "struct S { std::atomic<bool> stop_{false}; };\n"
        "}  // namespace htor\n",
        set(),
    ),
    (
        "the registry's own cells are the one home for raw atomics",
        "src/obs/good_cells.cpp",
        "namespace htor {\n"
        "struct Cell { std::atomic<std::uint64_t> value{0}; };\n"
        "}  // namespace htor\n",
        set(),
    ),
    (
        "spsc ring indices are the synchronization protocol, not telemetry",
        "src/util/spsc_ring.hpp",
        "#pragma once\nnamespace htor {\n"
        "struct R { std::atomic<std::uint64_t> tail_{0}; };\n"
        "}  // namespace htor\n",
        set(),
    ),
    (
        "the sketch hash module is the one home for the constants",
        "src/obs/sketch/hash.hpp",
        "#pragma once\nnamespace htor::obs::sketch {\n"
        "inline std::uint64_t splitmix64(std::uint64_t x) {\n"
        "  x += 0x9e3779b97f4a7c15ull;\n"
        "  return x * 0xbf58476d1ce4e5b9ull;\n"
        "}\n"
        "}  // namespace htor::obs::sketch\n",
        set(),
    ),
    (
        "a longer literal merely containing a hash constant stays quiet",
        "src/core/good_number.cpp",
        "namespace htor {\n"
        "const std::uint64_t kId = 10995116282111ull;\n"
        "}  // namespace htor\n",
        set(),
    ),
    (
        "bounded count through a named variable is fine",
        "src/snapshot/good_alloc.cpp",
        "namespace htor {\n"
        "void decode(ByteReader& r, std::vector<int>& v) {\n"
        "  const std::uint64_t count = decode_count(r, 9, \"rel\");\n"
        "  v.reserve(count);\n"
        "}\n"
        "}  // namespace htor\n",
        set(),
    ),
]


def self_test():
    failures = 0
    with tempfile.TemporaryDirectory(prefix="htor_lint_selftest_") as tmp:
        root = pathlib.Path(tmp)
        for name, rel, text, expected in SELF_TEST_CASES:
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
            fired = {f.rule for f in lint_file(path, rel, text)}
            path.unlink()
            missing = expected - fired
            unexpected = fired - expected if not expected else set()
            if missing or unexpected:
                failures += 1
                print(f"self-test FAIL: {name}: expected {sorted(expected) or 'none'}, "
                      f"got {sorted(fired) or 'none'}")
            else:
                print(f"self-test ok:   {name}")
    if failures:
        print(f"lint self-test: {failures} case(s) failed")
        return 1
    print(f"lint self-test: all {len(SELF_TEST_CASES)} cases passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root to lint")
    parser.add_argument("--self-test", action="store_true",
                        help="seed a violation of each rule and assert detection")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint: {len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
