// Unit tests for the BGP message codec.
#include <gtest/gtest.h>

#include "bgp/message.hpp"

namespace htor::bgp {
namespace {

Message round_trip(const Message& in) {
  const auto bytes = encode_message(in);
  ByteReader r(bytes);
  auto out = decode_message(r);
  EXPECT_TRUE(r.exhausted());
  return out;
}

TEST(BgpMessage, KeepaliveRoundTrip) {
  const auto out = round_trip(KeepaliveMessage{});
  EXPECT_TRUE(std::holds_alternative<KeepaliveMessage>(out));
  EXPECT_EQ(encode_message(KeepaliveMessage{}).size(), kMessageHeaderSize);
}

TEST(BgpMessage, OpenRoundTrip) {
  OpenMessage open;
  open.my_as = 64500;
  open.hold_time = 90;
  open.bgp_id = 0x0a000001;
  open.optional_params = {1, 2, 3};
  const auto out = round_trip(open);
  ASSERT_TRUE(std::holds_alternative<OpenMessage>(out));
  EXPECT_EQ(std::get<OpenMessage>(out), open);
}

TEST(BgpMessage, OpenWith4ByteAsnUsesAsTrans) {
  OpenMessage open;
  open.my_as = 4200000000u;
  const auto bytes = encode_message(open);
  ByteReader r(bytes);
  const auto out = decode_message(r);
  EXPECT_EQ(std::get<OpenMessage>(out).my_as, kAsTrans);
}

TEST(BgpMessage, UpdateRoundTrip) {
  UpdateMessage update;
  update.withdrawn = {Prefix::parse("192.0.2.0/24")};
  update.attrs.origin = Origin::Igp;
  update.attrs.as_path = AsPath::sequence({64500, 3356});
  update.attrs.next_hop = IpAddress::parse("10.0.0.1");
  update.nlri = {Prefix::parse("198.51.100.0/24"), Prefix::parse("203.0.113.0/24")};
  const auto out = round_trip(update);
  ASSERT_TRUE(std::holds_alternative<UpdateMessage>(out));
  EXPECT_EQ(std::get<UpdateMessage>(out), update);
}

TEST(BgpMessage, NotificationRoundTrip) {
  NotificationMessage notif;
  notif.code = 6;
  notif.subcode = 2;
  notif.data = {0xde, 0xad};
  const auto out = round_trip(notif);
  ASSERT_TRUE(std::holds_alternative<NotificationMessage>(out));
  EXPECT_EQ(std::get<NotificationMessage>(out), notif);
}

TEST(BgpMessage, Ipv6UpdateHelper) {
  PathAttributes base;
  base.origin = Origin::Igp;
  base.as_path = AsPath::sequence({64500});
  base.next_hop = IpAddress::parse("10.0.0.1");  // must be dropped for v6
  const auto update = make_ipv6_update(base, IpAddress::parse("2001:db8::1"),
                                       {Prefix::parse("2001:db8:100::/48")});
  EXPECT_FALSE(update.attrs.next_hop.has_value());
  ASSERT_TRUE(update.attrs.mp_reach.has_value());
  EXPECT_EQ(update.attrs.mp_reach->nlri.size(), 1u);
  EXPECT_EQ(std::get<UpdateMessage>(round_trip(update)), update);

  EXPECT_THROW(make_ipv6_update(base, IpAddress::parse("10.0.0.1"), {}), InvalidArgument);
  EXPECT_THROW(
      make_ipv6_update(base, IpAddress::parse("2001:db8::1"), {Prefix::parse("10.0.0.0/8")}),
      InvalidArgument);
}

TEST(BgpMessage, TopLevelNlriMustBeV4) {
  UpdateMessage update;
  update.nlri = {Prefix::parse("2001:db8::/32")};
  EXPECT_THROW(encode_message(update), InvalidArgument);
  UpdateMessage withdraw;
  withdraw.withdrawn = {Prefix::parse("2001:db8::/32")};
  EXPECT_THROW(encode_message(withdraw), InvalidArgument);
}

TEST(BgpMessage, BadMarkerRejected) {
  auto bytes = encode_message(KeepaliveMessage{});
  bytes[3] = 0x00;
  ByteReader r(bytes);
  EXPECT_THROW(decode_message(r), DecodeError);
}

TEST(BgpMessage, BadLengthRejected) {
  auto bytes = encode_message(KeepaliveMessage{});
  bytes[16] = 0;
  bytes[17] = 5;  // shorter than the header itself
  ByteReader r(bytes);
  EXPECT_THROW(decode_message(r), DecodeError);
}

TEST(BgpMessage, KeepaliveWithBodyRejected) {
  auto bytes = encode_message(KeepaliveMessage{});
  bytes[17] = static_cast<std::uint8_t>(kMessageHeaderSize + 1);
  bytes.push_back(0);
  ByteReader r(bytes);
  EXPECT_THROW(decode_message(r), DecodeError);
}

TEST(BgpMessage, StreamOfMessages) {
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 3; ++i) {
    const auto m = encode_message(KeepaliveMessage{});
    stream.insert(stream.end(), m.begin(), m.end());
  }
  ByteReader r(stream);
  int count = 0;
  while (!r.exhausted()) {
    decode_message(r);
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(BgpMessage, OversizeRejected) {
  UpdateMessage update;
  for (std::uint16_t i = 0; i < 1200; ++i) {
    update.attrs.communities.emplace_back(64500, i);
  }
  EXPECT_THROW(encode_message(update), InvalidArgument);
}

}  // namespace
}  // namespace htor::bgp
