// T3 (§3 ¶2): hybrid link census.
// Paper: 779 (13%) of the IPv4/IPv6 links have hybrid relationships; 67% of
// them are p2p in IPv4 but transit in IPv6; the rest p2p(v6)/p2c(v4); plus a
// single p2c(v4)/c2p(v6) reversal.
#include <iostream>

#include "harness.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace htor;
  bench::print_header("T3 / bench_sec3_hybrid",
                      "779 (13%) hybrid links; 67% p2p(v4)/transit(v6); 1 reversal");

  const auto ds = bench::make_dataset();
  const auto census = core::run_census(ds.rib, ds.dict);
  const auto& h = census.hybrids;

  Table t({"metric", "paper", "measured"});
  const std::size_t detected = h.hybrids.size();
  t.row({"dual links with both rels known", "6160", std::to_string(h.dual_links_both_known)});
  t.row({"hybrid links", "779 (13%)",
         std::to_string(detected) + " (" + fmt_pct(detected, h.dual_links_both_known) + ")"});
  t.row({"p2p(v4) / transit(v6)", "67%",
         std::to_string(h.peer_v4_transit_v6) + " (" +
             fmt_pct(h.peer_v4_transit_v6, detected) + ")"});
  t.row({"transit(v4) / p2p(v6)", "~33%",
         std::to_string(h.transit_v4_peer_v6) + " (" +
             fmt_pct(h.transit_v4_peer_v6, detected) + ")"});
  t.row({"p2c(v4)/c2p(v6) reversals", "1", std::to_string(h.reversals)});
  t.row({"other mixes (siblings)", "-", std::to_string(h.other_mix)});
  t.print(std::cout);

  // Ground-truth validation: how many detected hybrids are planted ones?
  std::size_t true_positive = 0;
  std::unordered_set<LinkKey, LinkKeyHash> planted;
  for (const auto& g : ds.net.hybrid_links()) planted.insert(g.link);
  for (const auto& finding : h.hybrids) {
    if (planted.count(finding.link)) ++true_positive;
  }
  std::cout << "\nvalidation against planted ground truth:\n";
  Table v({"metric", "value"});
  v.row({"planted hybrid links (whole topology)", std::to_string(planted.size())});
  v.row({"detected hybrids that are planted", std::to_string(true_positive)});
  v.row({"detection precision", fmt_pct(true_positive, detected)});
  v.print(std::cout);
  return 0;
}
