// Deterministic stateless hashing for the generator.
//
// Some per-(AS, origin) decisions (TE overrides, geo tags) must be
// reproducible at route-extraction time without replaying a sequential RNG;
// they are derived from splitmix64 of the participating identifiers instead.
#pragma once

#include <cstdint>

namespace htor {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ splitmix64(b));
}

/// Deterministic uniform double in [0, 1) from a hash value.
inline double hash_unit(std::uint64_t h) {
  return static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
}

}  // namespace htor
