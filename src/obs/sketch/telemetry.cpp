#include "obs/sketch/telemetry.hpp"

namespace htor::obs::sketch {

namespace {

/// Bloom shape for the seen-link pre-filter: sized for an internet-scale
/// link census (~1M distinct links at 1% false positives ≈ 1.2 MiB — the
/// dominant sketch allocation, still fixed no matter the stream length).
constexpr std::size_t kSeenLinksExpected = 1u << 20;
constexpr double kSeenLinksFpRate = 0.01;

}  // namespace

Telemetry& Telemetry::global() {
  static Telemetry* instance = new Telemetry();  // never destroyed
  return *instance;
}

Telemetry::Telemetry()
    : ases_(Hll::kDefaultPrecision, kTelemetrySeed),
      prefixes_(Hll::kDefaultPrecision, kTelemetrySeed),
      links_(Hll::kDefaultPrecision, kTelemetrySeed),
      origins_(Cms::kDefaultWidthLog2, Cms::kDefaultDepth, Cms::kDefaultTopK, kTelemetrySeed),
      link_votes_(Cms::kDefaultWidthLog2, Cms::kDefaultDepth, Cms::kDefaultTopK,
                  kTelemetrySeed),
      seen_links_(kSeenLinksExpected, kSeenLinksFpRate, kTelemetrySeed) {
  auto& registry = MetricsRegistry::global();
  using Kind = MetricsRegistry::Kind;
  // Callbacks run at scrape time under the registry's lock and take ours —
  // never the other way around, so the lock order is acyclic.
  registrations_.push_back(registry.callback(
      "htor_sketch_unique_as_estimate", {}, Kind::Gauge, [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        return ases_.estimate_count();
      }));
  registrations_.push_back(registry.callback(
      "htor_sketch_unique_prefixes_estimate", {}, Kind::Gauge, [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        return prefixes_.estimate_count();
      }));
  registrations_.push_back(registry.callback(
      "htor_sketch_unique_links_estimate", {}, Kind::Gauge, [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        return links_.estimate_count();
      }));
  registrations_.push_back(registry.callback(
      "htor_sketch_bloom_link_hits_total", {}, Kind::Counter, [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        return static_cast<std::int64_t>(bloom_hits_);
      }));
  registrations_.push_back(registry.callback(
      "htor_sketch_bloom_link_misses_total", {}, Kind::Counter, [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        return static_cast<std::int64_t>(bloom_misses_);
      }));
  registrations_.push_back(registry.callback(
      "htor_sketch_top_origin_routes", {}, Kind::Gauge, [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto top = origins_.top();
        return top.empty() ? std::int64_t{0} : static_cast<std::int64_t>(top.front().estimate);
      }));
  registrations_.push_back(registry.callback(
      "htor_sketch_top_link_votes", {}, Kind::Gauge, [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto top = link_votes_.top();
        return top.empty() ? std::int64_t{0} : static_cast<std::int64_t>(top.front().estimate);
      }));
  for (const char* kind : {"as", "prefix", "link"}) {
    registrations_.push_back(registry.callback(
        "htor_sketch_epoch_churn_estimate", {{"kind", kind}}, Kind::Gauge,
        [this, kind] {
          std::lock_guard<std::mutex> lock(mutex_);
          if (kind[0] == 'a') return epoch_churn_ases_;
          if (kind[0] == 'p') return epoch_churn_prefixes_;
          return epoch_churn_links_;
        }));
  }
  registrations_.push_back(registry.callback(
      "htor_sketch_memory_bytes", {}, Kind::Gauge, [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        return static_cast<std::int64_t>(ases_.memory_bytes() + prefixes_.memory_bytes() +
                                         links_.memory_bytes() + origins_.memory_bytes() +
                                         link_votes_.memory_bytes() +
                                         seen_links_.memory_bytes());
      }));
}

void Telemetry::absorb(const IngestBundle& bundle) {
  std::lock_guard<std::mutex> lock(mutex_);
  ases_.merge(bundle.ases);
  prefixes_.merge(bundle.prefixes);
  links_.merge(bundle.links);
  origins_.merge(bundle.origins);
}

bool Telemetry::note_link_seen(std::uint64_t link) {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool hit = seen_links_.insert(link);
  if (hit) {
    ++bloom_hits_;
  } else {
    ++bloom_misses_;
  }
  return hit;
}

void Telemetry::feed_link_votes(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& votes) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [item, weight] : votes) link_votes_.update(item, weight);
}

void Telemetry::set_epoch_churn(std::int64_t ases, std::int64_t prefixes, std::int64_t links) {
  std::lock_guard<std::mutex> lock(mutex_);
  epoch_churn_ases_ = ases;
  epoch_churn_prefixes_ = prefixes;
  epoch_churn_links_ = links;
}

Telemetry::Snapshot Telemetry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  out.unique_ases = ases_.estimate_count();
  out.unique_prefixes = prefixes_.estimate_count();
  out.unique_links = links_.estimate_count();
  out.bloom_hits = bloom_hits_;
  out.bloom_misses = bloom_misses_;
  out.origin_routes_total = origins_.total_weight();
  out.top_origins = origins_.top();
  out.top_link_votes = link_votes_.top();
  out.memory_bytes = ases_.memory_bytes() + prefixes_.memory_bytes() + links_.memory_bytes() +
                     origins_.memory_bytes() + link_votes_.memory_bytes() +
                     seen_links_.memory_bytes();
  return out;
}

void Telemetry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ases_.reset();
  prefixes_.reset();
  links_.reset();
  origins_.reset();
  link_votes_.reset();
  seen_links_.reset();
  bloom_hits_ = 0;
  bloom_misses_ = 0;
  epoch_churn_ases_ = 0;
  epoch_churn_prefixes_ = 0;
  epoch_churn_links_ = 0;
}

}  // namespace htor::obs::sketch
