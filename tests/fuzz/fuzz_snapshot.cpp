// Fuzz target: the snapshot reader (snapshot::Reader::decode).
//
// Contract asserted per input: decode yields a full Snapshot or throws a
// reasoned DecodeError.  Accepted inputs face a second, stronger oracle —
// the format's canonical-encoding guarantee: re-encoding the decoded
// snapshot must reproduce the input byte for byte.  A mutation the reader
// accepts but cannot round-trip means the format stopped being injective
// (some byte was silently ignored), which is exactly the class of bug that
// breaks snapshot diffing and --jobs determinism.
#include "fuzz/driver.hpp"

#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"

using namespace htor;

int main(int argc, char** argv) {
  return fuzz::run_target("fuzz_snapshot", argc, argv,
                          [](const std::vector<std::uint8_t>& input) {
    const auto snap = snapshot::Reader::decode(input);
    const auto reencoded = snapshot::Writer::encode(snap);
    if (reencoded != input) {
      throw std::runtime_error("accepted input does not re-encode canonically (" +
                               std::to_string(input.size()) + " bytes in, " +
                               std::to_string(reencoded.size()) + " bytes out)");
    }
    return fuzz::Outcome::Parsed;
  });
}
