// The live update pipeline: reader -> decoder -> apply as three overlapping
// stages connected by bounded SPSC rings.
//
//   reader (thread)    scans BGP4MP frames off the update files with
//                      MrtStreamReader::next_update() — header-only skip of
//                      everything else — and pushes raw frames.
//   decoder (thread)   decodes frame bodies into Bgp4mpMessages.
//   apply (caller)     folds each message into the IncrementalCensus and
//                      cuts epochs.
//
// This replaces the batch pipeline's shard_map barriers with *backpressure*:
// a full ring stalls its producer (bounded memory, no unbounded queue), an
// empty ring stalls its consumer, and at no point does a stage wait for a
// whole batch.  The shape is the ISSUE's streaming-stages-over-bounded-
// queues answer to whole-RIB recomputation being the bottleneck.
//
// Determinism: the rings are SPSC, so the apply stage sees messages in
// exactly file order for ANY ring capacity and ANY thread interleaving, and
// epochs are cut by applied-message COUNT (never time).  Hence a given
// (RIB, update stream) prefix yields byte-identical census state and epoch
// snapshots at ring capacity 2 and 4096, --jobs 1 and 4 — which
// test_live pins as the acceptance matrix.
//
// Error discipline: a DecodeError anywhere (framing in the reader, message
// bytes in the decoder, semantic validation in apply) stops the pipeline,
// joins both stages, and rethrows from run() — same strictness as batch
// ingest.  request_stop() is the cooperative cancel used by serve --follow
// shutdown; it aborts cleanly without an exception.
//
// Metrics (obs::MetricsRegistry::global(), all scraped via GET /metrics):
//   htor_live_records_total / htor_live_skipped_records_total  reader
//   htor_live_updates_total, htor_live_announces_total,
//   htor_live_withdraws_total, htor_live_replaces_total        apply
//   htor_live_push_waits_total{stage=}                         backpressure
//   htor_live_ring_depth{stage=}                               occupancy
//   htor_live_routes, htor_live_staleness_updates              freshness
//   htor_live_epochs_total + OBS_SPAN("live.epoch")            epochs
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "live/incremental_census.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace htor::live {

struct PipelineConfig {
  /// Slots per inter-stage ring (rounded up to a power of two, floored at
  /// 2).  Any value yields identical output; capacity trades memory for
  /// fewer backpressure stalls.
  std::size_t ring_capacity = 1024;
  /// Cut an epoch every N applied messages; 0 = only the final epoch.
  /// Counted in messages, never time, so epoch contents are reproducible.
  std::uint64_t epoch_every = 0;
  /// Emit a final epoch when the stream ends (skipped when the last
  /// counted epoch already covers every applied message).
  bool final_epoch = true;
};

struct PipelineResult {
  std::uint64_t records = 0;  ///< BGP4MP frames read (after header skips)
  std::uint64_t skipped = 0;  ///< non-update frames skipped by the reader
  std::uint64_t applied = 0;  ///< messages applied to the census
  std::uint64_t epochs = 0;   ///< epochs emitted
  bool stopped = false;       ///< true when request_stop() cut the run short
};

class Pipeline {
 public:
  using EpochCallback = std::function<void(const EpochReport&)>;

  /// Borrows `census`; the caller keeps it (and reads its final state)
  /// after run() returns.
  explicit Pipeline(IncrementalCensus& census, PipelineConfig config = {});

  /// Stream every update file, in order, through the three stages; apply
  /// runs on the calling thread.  `epoch_pool` is used only for epoch
  /// recomputes.  `on_epoch` (optional) receives each cut epoch, in order.
  /// Not reentrant; one run() at a time.
  PipelineResult run(const std::vector<std::string>& update_paths, ThreadPool& epoch_pool,
                     const EpochCallback& on_epoch = {});

  /// Cooperative cancel, callable from any thread: stages drain out and
  /// run() returns with `stopped = true` (no exception, no final epoch).
  void request_stop() { stop_.store(true, std::memory_order_release); }

 private:
  IncrementalCensus& census_;
  PipelineConfig config_;
  std::atomic<bool> stop_{false};

  // Resolved once; incremented from exactly one stage each (the sharded
  // cells make cross-scrape reads safe).
  obs::Counter records_total_;
  obs::Counter skipped_total_;
  obs::Counter updates_total_;
  obs::Counter announces_total_;
  obs::Counter withdraws_total_;
  obs::Counter replaces_total_;
  obs::Counter epochs_total_;
  obs::Counter push_waits_decode_;
  obs::Counter push_waits_apply_;
  obs::Gauge routes_;
  obs::Gauge staleness_;
};

}  // namespace htor::live
