// RFC 1997 communities and RFC 8092 large communities.
//
// A classic community is a 32-bit value conventionally written and
// interpreted as <asn>:<value>; the ASN half identifies whose dictionary the
// value belongs to, which is exactly the property the paper's mining step
// relies on.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/asn.hpp"

namespace htor::bgp {

class Community {
 public:
  constexpr Community() = default;
  explicit constexpr Community(std::uint32_t raw) : raw_(raw) {}
  constexpr Community(std::uint16_t asn, std::uint16_t value)
      : raw_(static_cast<std::uint32_t>(asn) << 16 | value) {}

  constexpr std::uint32_t raw() const { return raw_; }
  constexpr std::uint16_t asn() const { return static_cast<std::uint16_t>(raw_ >> 16); }
  constexpr std::uint16_t value() const { return static_cast<std::uint16_t>(raw_ & 0xffff); }

  /// "64500:120" form.
  std::string to_string() const;

  /// Parse "asn:value".  Throws ParseError.
  static Community parse(std::string_view text);
  static bool try_parse(std::string_view text, Community& out);

  friend constexpr bool operator==(Community a, Community b) { return a.raw_ == b.raw_; }
  friend constexpr std::strong_ordering operator<=>(Community a, Community b) {
    return a.raw_ <=> b.raw_;
  }

 private:
  std::uint32_t raw_ = 0;
};

/// RFC 1997 well-known communities.
inline constexpr Community kNoExport{0xffffff01};
inline constexpr Community kNoAdvertise{0xffffff02};
inline constexpr Community kNoExportSubconfed{0xffffff03};

/// RFC 8092 large community: asn:local1:local2, each 32 bits.
struct LargeCommunity {
  std::uint32_t global = 0;
  std::uint32_t local1 = 0;
  std::uint32_t local2 = 0;

  std::string to_string() const;
  static LargeCommunity parse(std::string_view text);
  static bool try_parse(std::string_view text, LargeCommunity& out);

  friend bool operator==(const LargeCommunity&, const LargeCommunity&) = default;
  friend std::strong_ordering operator<=>(const LargeCommunity&, const LargeCommunity&) = default;
};

/// Sorted, deduplicated copy — the canonical form for set comparison.
std::vector<Community> normalized(std::vector<Community> communities);

}  // namespace htor::bgp
